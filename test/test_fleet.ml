(* The fleet tier end to end, in process: several TCP daemons behind the
   replica router. Proves the failover determinism contract — a routed
   grid answers byte-for-byte like a single sequential daemon, a replica
   lost mid-grid changes no answer, a drain-aborted in-flight solve is
   re-run (never served stale) — plus the probe fast path: health answers
   promptly while every pool worker is busy. *)

module Daemon = Phom_server.Daemon
module Client = Phom_server.Client
module Router = Phom_server.Router
module Faults = Phom_server.Faults

let fig1_pattern = Filename.concat "../data" "fig1_pattern.phg"
let fig1_store = Filename.concat "../data" "fig1_store.phg"

let ok_or_fail = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let check_str = Alcotest.(check string)

(* n sequential daemons, each on an ephemeral loopback TCP port; [f]
   receives their endpoints. Replicas are shut down (tolerantly: a test
   may have downed some itself) and joined on the way out. *)
let with_fleet ?(config = Daemon.default_config) n f =
  let config = { config with Daemon.listen = [ "127.0.0.1:0" ] } in
  let lock = Mutex.create () and cond = Condition.create () in
  let addrs = Array.make n None in
  let spawn i =
    Domain.spawn (fun () ->
        Daemon.serve
          ~ready:(fun bound ->
            Mutex.lock lock;
            addrs.(i) <- Some (List.hd bound);
            Condition.signal cond;
            Mutex.unlock lock)
          config)
  in
  let domains = List.init n spawn in
  Mutex.lock lock;
  while Array.exists Option.is_none addrs do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  let endpoints = Array.to_list (Array.map Option.get addrs) in
  Fun.protect
    ~finally:(fun () ->
      Faults.clear ();
      List.iter
        (fun ep ->
          match Client.sockaddr_of_string ep with
          | Ok sa ->
              ignore
                (Client.request ~connect_timeout:5. ~read_timeout:5. sa
                   "shutdown")
          | Error _ -> ())
        endpoints;
      List.iter Domain.join domains)
    (fun () -> f endpoints)

let shutdown_endpoint ep =
  ignore
    (Client.request ~connect_timeout:5. ~read_timeout:10.
       (ok_or_fail (Client.sockaddr_of_string ep))
       "shutdown")

let router_for endpoints =
  ok_or_fail
    (Router.create
       ~config:
         {
           Router.default_config with
           connect_timeout = Some 5.;
           read_timeout = Some 30.;
           cooldown = 0.2;
         }
       ~endpoints ())

let load_fixtures ask =
  let r = ask ("load graph pat " ^ fig1_pattern) in
  if not (String.length r >= 2 && String.sub r 0 2 = "ok") then
    Alcotest.failf "load pat: %s" r;
  let r = ask ("load graph store " ^ fig1_store) in
  if not (String.length r >= 2 && String.sub r 0 2 = "ok") then
    Alcotest.failf "load store: %s" r

(* the provenance suffix differs between a shared single-node cache and
   per-replica caches; everything before it must agree byte-for-byte *)
let strip_cache reply =
  let marker = " cache=" in
  let rec find i =
    if i + String.length marker > String.length reply then None
    else if String.sub reply i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub reply 0 i | None -> reply

(* a deterministic request grid over the fig1 fixtures: every problem,
   both directions, plus counts *)
let grid =
  List.concat_map
    (fun problem ->
      [
        Printf.sprintf "solve %s pat store" problem;
        Printf.sprintf "solve %s pat store --sim shingles --xi 0.5" problem;
      ])
    [ "card"; "card11"; "sim"; "sim11" ]
  @ [ "count pat store"; "count pat store --sim shingles --xi 0.5" ]

(* single-node reference: a fresh sequential daemon answers the grid *)
let reference_replies () =
  let out = ref [] in
  with_fleet 1 (fun endpoints ->
      let ep = List.hd endpoints in
      let ask line =
        ok_or_fail
          (Client.request ~connect_timeout:5. ~read_timeout:30.
             (ok_or_fail (Client.sockaddr_of_string ep))
             line)
      in
      load_fixtures ask;
      out := List.map (fun line -> (line, ask line)) grid);
  !out

(* replicas run a 2-worker pool so the event loop stays free to process
   control verbs (shutdown, health) while a solve is in flight — the
   fleet-shaped deployment; the reference stays --jobs 1 sequential, so
   grid equality doubles as a pool-determinism check over the wire *)
let fleet_config = { Daemon.default_config with Daemon.jobs = 2 }

let test_fleet_grid_matches_single_node () =
  let expected = reference_replies () in
  with_fleet ~config:fleet_config 3 (fun endpoints ->
      let r = router_for endpoints in
      load_fixtures (fun line -> ok_or_fail (Router.request r line));
      List.iter
        (fun (line, want) ->
          let got = ok_or_fail (Router.request r line) in
          check_str line (strip_cache want) (strip_cache got))
        expected)

let test_fleet_survives_replica_loss () =
  let expected = reference_replies () in
  with_fleet ~config:fleet_config 3 (fun endpoints ->
      let r = router_for endpoints in
      load_fixtures (fun line -> ok_or_fail (Router.request r line));
      (* take down the replica that owns the grid's key: every request for
         (pat, store) must fail over and the answers must not change *)
      let owner =
        Option.get
          (Router.owner ~endpoints
             ~key:(Router.solve_key ~g1:"pat" ~g2:"store")
             ())
      in
      shutdown_endpoint owner;
      List.iter
        (fun (line, want) ->
          let got = ok_or_fail (Router.request r line) in
          check_str line (strip_cache want) (strip_cache got))
        expected;
      Alcotest.(check bool)
        "failovers recorded" true
        (Router.failovers r > 0))

let test_drain_abort_reruns_not_stale () =
  let expected = reference_replies () in
  let line = "solve card pat store" in
  let want = strip_cache (List.assoc line expected) in
  Alcotest.(check bool)
    "reference answer is complete" true
    (String.length want > 0
    && (let m = "status=complete" in
        let n = String.length want and k = String.length m in
        let rec scan i = i + k <= n && (String.sub want i k = m || scan (i + 1)) in
        scan 0));
  with_fleet ~config:fleet_config 3 (fun endpoints ->
      let r = router_for endpoints in
      load_fixtures (fun l -> ok_or_fail (Router.request r l));
      let owner =
        Option.get
          (Router.owner ~endpoints
             ~key:(Router.solve_key ~g1:"pat" ~g2:"store")
             ())
      in
      (* hold every solve for half a second, then shut the owner down while
         the routed solve sits inside the delay: the drain budget-trips it
         to status=exhausted(cancelled), and the router must re-run it on a
         survivor instead of serving the aborted artifact *)
      Faults.set_solve_delay 0.5;
      let killer =
        Domain.spawn (fun () ->
            Unix.sleepf 0.15;
            shutdown_endpoint owner)
      in
      let got = Router.request r line in
      Domain.join killer;
      Faults.set_solve_delay 0.;
      let got = ok_or_fail got in
      check_str "re-run answer matches the reference" want (strip_cache got);
      Alcotest.(check bool)
        "the re-run failed over" true
        (Router.failovers r > 0))

(* the probe fast path: health/stats answer from the event loop, never
   through the pool, so a fleet router can probe a saturated replica *)
let test_health_prompt_under_saturated_pool () =
  let config = { Daemon.default_config with Daemon.jobs = 2; max_pending = 8 } in
  with_fleet ~config 1 (fun endpoints ->
      let ep = List.hd endpoints in
      let sa = ok_or_fail (Client.sockaddr_of_string ep) in
      let ask ?(read_timeout = 30.) line =
        ok_or_fail (Client.request ~connect_timeout:5. ~read_timeout sa line)
      in
      load_fixtures ask;
      (* warm once so the saturating solves don't contend on artifacts *)
      ignore (ask "solve card pat store");
      Faults.set_solve_delay 1.0;
      let busy =
        List.init 2 (fun _ ->
            Domain.spawn (fun () -> ask "solve card pat store"))
      in
      (* give the solves time to land on the two pool workers *)
      Unix.sleepf 0.2;
      let t0 = Unix.gettimeofday () in
      let reply = ask ~read_timeout:5. "health" in
      let elapsed = Unix.gettimeofday () -. t0 in
      Faults.set_solve_delay 0.;
      List.iter (fun d -> ignore (Domain.join d)) busy;
      Alcotest.(check bool)
        "health reply well-formed" true
        (String.length reply >= 9 && String.sub reply 0 9 = "ok health");
      if elapsed > 0.5 then
        Alcotest.failf
          "health took %.3fs behind a saturated pool (must not queue)" elapsed)

(* the health-flap seam end to end: a replica whose probe endpoint lies
   sick answers [error unavailable] exactly n times, then recovers *)
let test_health_flap_seam () =
  with_fleet 1 (fun endpoints ->
      let sa =
        ok_or_fail (Client.sockaddr_of_string (List.hd endpoints))
      in
      let ask line =
        ok_or_fail (Client.request ~connect_timeout:5. ~read_timeout:10. sa line)
      in
      Faults.set_health_flap 2;
      check_str "first probe flaps" "error unavailable" (ask "health");
      check_str "second probe flaps" "error unavailable" (ask "health");
      Alcotest.(check bool)
        "third probe is honest" true
        (String.length (ask "health") >= 9))

let suite =
  [
    ( "fleet",
      [
        Alcotest.test_case "grid matches single node" `Slow
          test_fleet_grid_matches_single_node;
        Alcotest.test_case "replica loss changes no answer" `Slow
          test_fleet_survives_replica_loss;
        Alcotest.test_case "drain abort re-runs, never stale" `Slow
          test_drain_abort_reruns_not_stale;
        Alcotest.test_case "health prompt under saturated pool" `Slow
          test_health_prompt_under_saturated_pool;
        Alcotest.test_case "health flap seam" `Quick test_health_flap_seam;
      ] );
  ]
