(* Shared builders, qcheck generators and assertion helpers for the suite. *)

module D = Phom_graph.Digraph
module Bitset = Phom_graph.Bitset
module BM = Phom_graph.Bitmatrix
module TC = Phom_graph.Transitive_closure
module Simmat = Phom_sim.Simmat
module Mapping = Phom.Mapping
module Instance = Phom.Instance

let graph labels edges = D.make ~labels:(Array.of_list labels) ~edges

(* label-equality instance over two graphs, the Fig. 2 setting *)
let eq_instance ?(xi = 0.5) g1 g2 =
  Instance.make ~g1 ~g2 ~mat:(Simmat.of_label_equality g1 g2) ~xi ()

let qtest ?(count = 100) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name (QCheck.make ~print gen) prop)

(* ---- generators ---- *)

let small_labels = [| "A"; "B"; "C"; "D" |]

let digraph_gen ?(min_n = 1) ?(max_n = 8) ?(labels = small_labels)
    ?(edge_prob = 0.25) () : D.t QCheck.Gen.t =
 fun st ->
  let n = min_n + Random.State.int st (max_n - min_n + 1) in
  let lbls =
    Array.init n (fun _ -> labels.(Random.State.int st (Array.length labels)))
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if Random.State.float st 1.0 < edge_prob then edges := (u, v) :: !edges
    done
  done;
  D.make ~labels:lbls ~edges:!edges

let dag_gen ?(min_n = 1) ?(max_n = 8) ?(labels = small_labels)
    ?(edge_prob = 0.3) () : D.t QCheck.Gen.t =
 fun st ->
  let n = min_n + Random.State.int st (max_n - min_n + 1) in
  let lbls =
    Array.init n (fun _ -> labels.(Random.State.int st (Array.length labels)))
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float st 1.0 < edge_prob then edges := (u, v) :: !edges
    done
  done;
  D.make ~labels:lbls ~edges:!edges

let print_digraph g = Format.asprintf "%a" D.pp g

(* random instance: pair of graphs plus a random similarity matrix whose
   entries are snapped to {0, 0.4, 0.8, 1.0} so thresholds bite *)
let instance_gen ?(max_n1 = 6) ?(max_n2 = 8) ?(xi = 0.5) () :
    Instance.t QCheck.Gen.t =
 fun st ->
  let g1 = digraph_gen ~max_n:max_n1 () st in
  let g2 = digraph_gen ~max_n:max_n2 () st in
  let levels = [| 0.; 0.; 0.4; 0.8; 1.0 |] in
  let mat =
    Simmat.of_fun ~n1:(D.n g1) ~n2:(D.n g2) (fun _ _ ->
        levels.(Random.State.int st (Array.length levels)))
  in
  Instance.make ~g1 ~g2 ~mat ~xi ()

let print_instance (t : Instance.t) =
  Format.asprintf "g1=%a@.g2=%a@.mat=%a@.xi=%f" D.pp t.g1 D.pp t.g2 Simmat.pp
    t.mat t.xi

(* ---- assertions ---- *)

let check_valid ?(injective = false) t m =
  Alcotest.(check bool)
    (Format.asprintf "valid %smapping %a" (if injective then "1-1 " else "")
       Mapping.pp m)
    true
    (Instance.is_valid ~injective t m)

let check_mapping = Alcotest.(check (list (pair int int)))

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* occurrences of a non-empty needle (non-overlapping) *)
let count_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then 0
  else begin
    let count = ref 0 and i = ref 0 in
    while !i + nl <= hl do
      if String.sub haystack !i nl = needle then begin
        incr count;
        i := !i + nl
      end
      else incr i
    done;
    !count
  end
