open Helpers
module U = Phom_wis.Ungraph

let square () = U.create 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

let test_basic () =
  let g = square () in
  Alcotest.(check int) "n" 4 (U.n g);
  Alcotest.(check int) "m" 4 (U.nb_edges g);
  Alcotest.(check bool) "symmetric" true (U.adjacent g 1 0 && U.adjacent g 0 1);
  Alcotest.(check int) "degree" 2 (U.degree g 0);
  Alcotest.(check (float 1e-9)) "default weight" 1.0 (U.weight g 0)

let test_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Ungraph.create: self-loop")
    (fun () -> ignore (U.create 2 [ (1, 1) ]));
  Alcotest.check_raises "weights length"
    (Invalid_argument "Ungraph.create: weights length") (fun () ->
      ignore (U.create ~weights:[| 1. |] 2 []))

let test_dedup () =
  let g = U.create 3 [ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "dedup" 1 (U.nb_edges g)

let test_complement () =
  let g = square () in
  let c = U.complement g in
  Alcotest.(check int) "complement edges" 2 (U.nb_edges c);
  Alcotest.(check bool) "diagonals" true (U.adjacent c 0 2 && U.adjacent c 1 3);
  Alcotest.(check bool) "old edges gone" false (U.adjacent c 0 1)

let test_cliques_and_independents () =
  let g = square () in
  Alcotest.(check bool) "edge is clique" true (U.is_clique g [ 0; 1 ]);
  Alcotest.(check bool) "diagonal not" false (U.is_clique g [ 0; 2 ]);
  Alcotest.(check bool) "diagonal independent" true (U.is_independent g [ 0; 2 ]);
  Alcotest.(check bool) "repeat node rejected" false (U.is_clique g [ 0; 0 ]);
  Alcotest.(check (float 1e-9)) "total weight" 2.0 (U.total_weight g [ 0; 2 ])

let test_induced () =
  let g = square () in
  let sub, old_of_new = U.induced g (Bitset.of_list 4 [ 0; 1; 2 ]) in
  Alcotest.(check int) "nodes" 3 (U.n sub);
  Alcotest.(check int) "edges" 2 (U.nb_edges sub);
  Alcotest.(check (array int)) "map" [| 0; 1; 2 |] old_of_new

let suite =
  [
    ( "ungraph",
      [
        Alcotest.test_case "basics" `Quick test_basic;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "edge dedup" `Quick test_dedup;
        Alcotest.test_case "complement" `Quick test_complement;
        Alcotest.test_case "clique/independent predicates" `Quick
          test_cliques_and_independents;
        Alcotest.test_case "induced" `Quick test_induced;
      ] );
  ]
