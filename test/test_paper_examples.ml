(* Every worked example in the paper, end to end. *)
open Helpers
module PG = Paper_graphs
module Exact = Phom.Exact
module CMC = Phom.Comp_max_card
module CMS = Phom.Comp_max_sim
module Api = Phom.Api

let fig1_instance ?(xi = 0.6) () =
  Instance.make ~g1:PG.gp ~g2:PG.g ~mat:PG.mate ~xi ()

(* Example 1.1: conventional notions reject the match *)
let test_fig1_conventional_fail () =
  let module Sim = Phom_baselines.Simulation in
  let module Ull = Phom_baselines.Ullmann in
  Alcotest.(check bool) "graph simulation fails" false
    (Sim.matches_whole_graph (Sim.compute PG.gp PG.g));
  Alcotest.(check (option bool)) "subgraph isomorphism fails" (Some false)
    (Ull.exists PG.gp PG.g)

(* Examples 3.1/3.2: Gp ⪯(e,p) G and even ⪯¹⁻¹ w.r.t. mate and ξ ≤ 0.6 *)
let test_fig1_phom () =
  let t = fig1_instance () in
  check_valid t PG.sigma_fig1;
  check_valid ~injective:true t PG.sigma_fig1;
  Alcotest.(check (option bool)) "decide p-hom" (Some true) (Api.decide_phom t);
  Alcotest.(check (option bool)) "decide 1-1 p-hom" (Some true)
    (Api.decide_one_one_phom t)

let test_fig1_comp_max_card_finds_full_mapping () =
  let t = fig1_instance () in
  let m = CMC.run t in
  check_valid t m;
  Alcotest.(check (float 1e-9)) "full cardinality" 1.0 (Instance.qual_card t m);
  let m11 = CMC.run ~injective:true t in
  check_valid ~injective:true t m11;
  Alcotest.(check (float 1e-9)) "full 1-1 cardinality" 1.0
    (Instance.qual_card t m11)

let test_fig1_higher_threshold () =
  (* at ξ = 0.7 textbooks (0.6) and books↦booksets (0.6) drop out *)
  let t = fig1_instance ~xi:0.7 () in
  Alcotest.(check (option bool)) "no full mapping" (Some false)
    (Api.decide_phom t);
  let e = Exact.solve ~objective:Exact.Cardinality t in
  Alcotest.(check bool) "optimal" true (e.Exact.status = Phom_graph.Budget.Complete);
  (* everything except textbooks is still matchable *)
  Alcotest.(check (float 1e-9)) "5 of 6" (5. /. 6.)
    (Instance.qual_card t e.Exact.mapping)

(* Figure 2, pair 1 *)
let test_fig2_g1_g2 () =
  let t = eq_instance PG.g1_fig2 PG.g2_fig2 in
  Alcotest.(check (option bool)) "G1 ⪯ G2" (Some true) (Api.decide_phom t);
  Alcotest.(check (option bool)) "G1 ⋠ 1-1 G2" (Some false)
    (Api.decide_one_one_phom t);
  let m = CMC.run t in
  Alcotest.(check (float 1e-9)) "greedy finds it" 1.0 (Instance.qual_card t m)

(* Figure 2, pair 2 *)
let test_fig2_g3_g4 () =
  let t = eq_instance PG.g3_fig2 PG.g4_fig2 in
  Alcotest.(check (option bool)) "G3 ⋠ G4" (Some false) (Api.decide_phom t);
  (* but 2 of 3 nodes match: {A↦A, D↦D} or {B↦B, D↦D'} *)
  let e = Exact.solve ~objective:Exact.Cardinality t in
  Alcotest.(check (float 1e-9)) "best partial" (2. /. 3.)
    (Instance.qual_card t e.Exact.mapping)

(* Figure 2, pair 3 *)
let test_fig2_g5_g6 () =
  let t = eq_instance PG.g5_fig2 PG.g6_fig2 in
  Alcotest.(check (option bool)) "G5 ⪯ G6" (Some true) (Api.decide_phom t);
  Alcotest.(check (option bool)) "not 1-1" (Some false) (Api.decide_one_one_phom t)

(* Example 3.3: the quality metrics, with the paper's exact numbers *)
let test_example_3_3 () =
  let t = Instance.make ~g1:PG.ex33_g5 ~g2:PG.ex33_g6 ~mat:PG.ex33_mat ~xi:0.6 () in
  Alcotest.(check (option bool)) "not 1-1 p-hom" (Some false)
    (Api.decide_one_one_phom t);
  (* CPH¹⁻¹ optimum: qualCard = 4/5 = 0.8 via {A, v1, D, E} *)
  let card = Exact.solve ~injective:true ~objective:Exact.Cardinality t in
  Alcotest.(check bool) "card optimal" true (card.Exact.status = Phom_graph.Budget.Complete);
  Alcotest.(check (float 1e-9)) "qualCard(σc) = 0.8" 0.8
    (Instance.qual_card t card.Exact.mapping);
  Alcotest.(check (float 1e-9)) "qualSim(σc) = 0.36" 0.36
    (Instance.qual_sim ~weights:PG.ex33_weights t card.Exact.mapping);
  (* SPH¹⁻¹ optimum: qualSim = 0.7 via {A, v2} *)
  let sim =
    Exact.solve ~injective:true
      ~objective:(Exact.Similarity PG.ex33_weights) t
  in
  Alcotest.(check bool) "sim optimal" true (sim.Exact.status = Phom_graph.Budget.Complete);
  Helpers.check_mapping "σs = {A↦A, v2↦B}" [ (0, 0); (2, 1) ] sim.Exact.mapping;
  Alcotest.(check (float 1e-9)) "qualSim(σs) = 0.7" 0.7
    (Instance.qual_sim ~weights:PG.ex33_weights t sim.Exact.mapping);
  (* and the approximation algorithms respect validity and don't overshoot *)
  let approx = CMS.run ~injective:true ~weights:PG.ex33_weights t in
  check_valid ~injective:true t approx;
  Alcotest.(check bool) "approx ≤ opt" true
    (Instance.qual_sim ~weights:PG.ex33_weights t approx <= 0.7 +. 1e-9)

(* Example 5.1: compMaxCard on the Gp/G subgraphs *)
let test_example_5_1 () =
  let rows = [| PG.p_books; PG.p_textbooks; PG.p_abooks |] in
  let cols = [| PG.g_books; PG.g_categories; PG.g_school; PG.g_audiobooks; PG.g_booksets |] in
  let mat = Phom_sim.Simmat.restrict PG.mate ~rows ~cols in
  let t = Instance.make ~g1:PG.ex51_g1 ~g2:PG.ex51_g2 ~mat ~xi:0.5 () in
  let m = CMC.run t in
  check_valid t m;
  (* books↦books, textbooks↦school, abooks↦audiobooks — all three nodes.
     In the induced graphs: g1 nodes are books=0, textbooks=1, abooks=2;
     g2 nodes are books=0, categories=1, school=2, audiobooks=3, booksets=4 *)
  Helpers.check_mapping "the mapping of Example 5.1" [ (0, 0); (1, 2); (2, 3) ] m

let suite =
  [
    ( "paper_examples",
      [
        Alcotest.test_case "Fig 1: conventional matching fails" `Quick
          test_fig1_conventional_fail;
        Alcotest.test_case "Fig 1: Gp is (1-1) p-hom to G" `Quick test_fig1_phom;
        Alcotest.test_case "Fig 1: compMaxCard finds the full mapping" `Quick
          test_fig1_comp_max_card_finds_full_mapping;
        Alcotest.test_case "Fig 1: threshold 0.7 breaks the match" `Quick
          test_fig1_higher_threshold;
        Alcotest.test_case "Fig 2: G1/G2" `Quick test_fig2_g1_g2;
        Alcotest.test_case "Fig 2: G3/G4" `Quick test_fig2_g3_g4;
        Alcotest.test_case "Fig 2: G5/G6" `Quick test_fig2_g5_g6;
        Alcotest.test_case "Example 3.3: metrics" `Quick test_example_3_3;
        Alcotest.test_case "Example 5.1: compMaxCard trace" `Quick test_example_5_1;
      ] );
  ]
