(* Unit tests for the unified resource-budget token, plus the deterministic
   fault-injection grid of the robustness harness: every solver is driven
   over a grid of trip points and must (a) return a valid result, (b) never
   raise, and (c) improve monotonically as the trip point grows. *)

open Helpers
module Budget = Phom_graph.Budget
module BC = Phom_graph.Bounded_closure
module U = Phom_wis.Ungraph
module Wis = Phom_wis.Wis
module Exact = Phom.Exact
module CMC = Phom.Comp_max_card
module CMS = Phom.Comp_max_sim
module Naive = Phom.Naive
module Ull = Phom_baselines.Ullmann
module Mcs = Phom_baselines.Mcs
module Ged = Phom_baselines.Ged
module Sim = Phom_baselines.Simulation

(* ---- token semantics ---- *)

let test_trip_after_exact_count () =
  let b = Budget.trip_after 5 in
  for i = 1 to 5 do
    Alcotest.(check bool) (Printf.sprintf "tick %d ok" i) true (Budget.tick b)
  done;
  Alcotest.(check bool) "tick 6 trips" false (Budget.tick b);
  Alcotest.(check int) "5 steps consumed" 5 (Budget.steps_used b);
  Alcotest.(check bool) "why = steps" true (Budget.why b = Some Budget.Steps);
  (* sticky: trips forever, consuming nothing further *)
  Alcotest.(check bool) "still tripped" false (Budget.tick b);
  Alcotest.(check int) "steps frozen" 5 (Budget.steps_used b)

let test_trip_after_zero () =
  let b = Budget.trip_after 0 in
  Alcotest.(check bool) "first tick trips" false (Budget.tick b);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b)

let test_unlimited () =
  let b = Budget.unlimited () in
  for _ = 1 to 10_000 do
    assert (Budget.tick b)
  done;
  Alcotest.(check bool) "never exhausted" false (Budget.exhausted b);
  Alcotest.(check bool) "status complete" true (Budget.status b = Budget.Complete)

let test_deadline_trips () =
  (* anchor in 1970: the deadline is long past, so the very first tick
     (a power of two, hence a poll point) must notice *)
  let b = Budget.create ~anchor:0. ~timeout:1.0 () in
  Alcotest.(check bool) "first tick trips" false (Budget.tick b);
  Alcotest.(check bool) "why = deadline" true (Budget.why b = Some Budget.Deadline)

let test_deadline_busy_loop () =
  (* a real (tiny) deadline: busy-tick until it trips; the 10⁸ cap only
     exists so a regression fails instead of hanging *)
  let b = Budget.create ~timeout:0.001 () in
  let safety = ref 100_000_000 in
  while Budget.tick b && !safety > 0 do
    decr safety
  done;
  Alcotest.(check bool) "tripped before safety cap" true (!safety > 0);
  Alcotest.(check bool) "why = deadline" true (Budget.why b = Some Budget.Deadline)

let test_cancel () =
  let b = Budget.create () in
  Alcotest.(check bool) "runs" true (Budget.tick b);
  Budget.cancel b;
  Alcotest.(check bool) "tripped" false (Budget.tick b);
  Alcotest.(check bool) "why = cancelled" true (Budget.why b = Some Budget.Cancelled);
  (* an earlier trip reason wins *)
  let b2 = Budget.trip_after 0 in
  ignore (Budget.tick b2);
  Budget.cancel b2;
  Alcotest.(check bool) "steps reason kept" true (Budget.why b2 = Some Budget.Steps)

let test_cancel_hook () =
  let flag = ref false in
  let b = Budget.create ~cancel:(fun () -> !flag) () in
  Alcotest.(check bool) "runs while flag unset" true (Budget.poll b);
  flag := true;
  Alcotest.(check bool) "poll notices" false (Budget.poll b);
  Alcotest.(check bool) "why = cancelled" true (Budget.why b = Some Budget.Cancelled)

let test_create_validation () =
  Alcotest.check_raises "negative timeout" (Invalid_argument "Budget.create: negative timeout")
    (fun () -> ignore (Budget.create ~timeout:(-1.) ()));
  Alcotest.check_raises "negative steps" (Invalid_argument "Budget.create: negative steps")
    (fun () -> ignore (Budget.create ~steps:(-5) ()));
  Alcotest.check_raises "negative trip point"
    (Invalid_argument "Budget.trip_after: negative trip point") (fun () ->
      ignore (Budget.trip_after (-1)))

let test_strings () =
  Alcotest.(check string) "complete" "complete" (Budget.string_of_status Budget.Complete);
  Alcotest.(check string) "exhausted" "exhausted (steps)"
    (Budget.string_of_status (Budget.Exhausted Budget.Steps));
  Alcotest.(check string) "deadline" "deadline" (Budget.string_of_reason Budget.Deadline)

(* ---- the fault-injection grid ---- *)

let trip_points = [ 0; 1; 2; 4; 8; 16; 32; 64; 128; 512; 4096 ]

(* two deterministic instances: a sparse labelled one where matches exist,
   and a denser single-label one that makes searches branch *)
let grid_instances =
  let mk seed n1 m1 n2 m2 labels =
    let rng = Random.State.make [| seed |] in
    let g1 = Phom_graph.Generators.erdos_renyi ~rng ~n:n1 ~m:m1 ~labels in
    let g2 = Phom_graph.Generators.erdos_renyi ~rng ~n:n2 ~m:m2 ~labels in
    eq_instance ~xi:0.5 g1 g2
  in
  [
    mk 7 5 8 9 20 (fun i -> [| "A"; "B"; "C" |].(i mod 3));
    mk 23 6 12 8 24 (fun _ -> "x");
  ]

(* Drive [run : Budget.t -> float] over the grid. [run] must assert validity
   of its own result and return its quality; this checks no-raise and
   monotonicity, and that no truncated run beats the unbudgeted one. *)
let check_grid name ~unbudgeted run =
  let prev = ref neg_infinity in
  List.iter
    (fun n ->
      let q =
        try run (Budget.trip_after n)
        with e ->
          Alcotest.failf "%s: raised %s at trip point %d" name (Printexc.to_string e) n
      in
      if q < !prev -. 1e-9 then
        Alcotest.failf "%s: quality dropped from %g to %g at trip point %d" name
          !prev q n;
      if q > unbudgeted +. 1e-9 then
        Alcotest.failf "%s: truncated run (%g at %d) beats unbudgeted run (%g)"
          name q n unbudgeted;
      prev := max !prev q)
    trip_points

let size_q m = float_of_int (Phom.Mapping.size m)

let test_grid_comp_max_card () =
  List.iteri
    (fun i t ->
      List.iter
        (fun injective ->
          let run b =
            let m = CMC.run ~injective ~budget:b t in
            check_valid ~injective t m;
            Instance.qual_card t m
          in
          check_grid
            (Printf.sprintf "compMaxCard inst%d inj=%b" i injective)
            ~unbudgeted:(Instance.qual_card t (CMC.run ~injective t))
            run)
        [ false; true ])
    grid_instances

let test_grid_comp_max_sim () =
  List.iteri
    (fun i t ->
      let weights =
        Array.init (Phom_graph.Digraph.n t.Instance.g1) (fun v ->
            float_of_int (1 + (v mod 3)))
      in
      let run b =
        let m = CMS.run ~weights ~budget:b t in
        check_valid t m;
        Instance.qual_sim ~weights t m
      in
      check_grid
        (Printf.sprintf "compMaxSim inst%d" i)
        ~unbudgeted:(Instance.qual_sim ~weights t (CMS.run ~weights t))
        run)
    grid_instances

let test_grid_naive () =
  List.iteri
    (fun i t ->
      let run b =
        let m = Naive.max_card ~budget:b t in
        check_valid t m;
        Instance.qual_card t m
      in
      check_grid
        (Printf.sprintf "naive inst%d" i)
        ~unbudgeted:(Instance.qual_card t (Naive.max_card t))
        run)
    grid_instances

let test_grid_exact () =
  List.iteri
    (fun i t ->
      List.iter
        (fun injective ->
          let unbudgeted =
            (Exact.solve ~injective ~objective:Exact.Cardinality t).Exact.mapping
          in
          let run b =
            let o = Exact.solve ~injective ~budget:b ~objective:Exact.Cardinality t in
            check_valid ~injective t o.Exact.mapping;
            (match o.Exact.status with
            | Budget.Complete -> ()
            | Budget.Exhausted r ->
                Alcotest.(check bool)
                  "exhausted for steps" true (r = Budget.Steps));
            Instance.qual_card t o.Exact.mapping
          in
          check_grid
            (Printf.sprintf "exact inst%d inj=%b" i injective)
            ~unbudgeted:(Instance.qual_card t unbudgeted) run)
        [ false; true ])
    grid_instances

let test_grid_greedy_via_run_on () =
  (* drives Greedy.run through the per-tree entry point, with capacities *)
  List.iteri
    (fun i t ->
      let run b =
        let m = CMC.run_on ~budget:b t (Phom.Matching_list.of_candidates (Instance.candidates t)) in
        check_valid t m;
        Instance.qual_card t m
      in
      check_grid
        (Printf.sprintf "greedy/run_on inst%d" i)
        ~unbudgeted:
          (Instance.qual_card t (CMC.run_on t (Phom.Matching_list.of_candidates (Instance.candidates t))))
        run)
    grid_instances

let test_grid_wis () =
  let g =
    let rng = Random.State.make [| 31 |] in
    let n = 14 in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Random.State.float rng 1.0 < 0.4 then edges := (u, v) :: !edges
      done
    done;
    U.create n !edges
  in
  let run_clique b =
    let c = Wis.max_clique ~budget:b g in
    Alcotest.(check bool) "is clique" true (U.is_clique g c);
    float_of_int (List.length c)
  in
  check_grid "wis/is_removal"
    ~unbudgeted:(float_of_int (List.length (Wis.max_clique g)))
    run_clique;
  let run_is b =
    let s = Wis.max_independent_set ~budget:b g in
    Alcotest.(check bool) "is independent" true (U.is_independent g s);
    float_of_int (List.length s)
  in
  check_grid "wis/clique_removal"
    ~unbudgeted:(float_of_int (List.length (Wis.max_independent_set g)))
    run_is;
  let run_exact b =
    let c, _status = Wis.exact_max_clique ~budget:b g in
    Alcotest.(check bool) "exact is clique" true (U.is_clique g c);
    float_of_int (List.length c)
  in
  check_grid "wis/exact_max_clique"
    ~unbudgeted:(float_of_int (List.length (fst (Wis.exact_max_clique g))))
    run_exact

let test_grid_ullmann () =
  List.iteri
    (fun i t ->
      let g1 = t.Instance.g1 and g2 = t.Instance.g2 in
      let run b =
        match Ull.find ~budget:b g1 g2 with
        | Ull.Found m ->
            Alcotest.(check bool) "embedding" true (Ull.is_embedding g1 g2 m);
            size_q m
        | Ull.Not_found_ -> float_of_int (Phom_graph.Digraph.n g1)
        | Ull.Gave_up m ->
            Alcotest.(check bool)
              "partial embedding" true
              (Ull.is_partial_embedding g1 g2 m);
            size_q m
      in
      (* size of the deepest partial embedding grows with budget; a full
         answer (Found/Not_found_) counts as n1 *)
      check_grid
        (Printf.sprintf "ullmann inst%d" i)
        ~unbudgeted:(float_of_int (Phom_graph.Digraph.n g1))
        run)
    grid_instances

let test_grid_mcs () =
  List.iteri
    (fun i t ->
      let g1 = t.Instance.g1 and g2 = t.Instance.g2 in
      let reference =
        match Mcs.run ~budget:(Budget.trip_after (List.fold_left max 0 trip_points)) g1 g2 with
        | Mcs.Completed m | Mcs.Timed_out m -> Mcs.quality g1 m
      in
      let run b =
        let m =
          match Mcs.run ~budget:b g1 g2 with
          | Mcs.Completed m | Mcs.Timed_out m -> m
        in
        Alcotest.(check bool)
          "common subgraph" true
          (Mcs.is_common_subgraph g1 g2 m);
        Mcs.quality g1 m
      in
      check_grid (Printf.sprintf "mcs inst%d" i) ~unbudgeted:reference run)
    grid_instances

let test_grid_ged () =
  List.iteri
    (fun i t ->
      let g1 = t.Instance.g1 and g2 = t.Instance.g2 in
      let run b =
        let s = Ged.similarity ~budget:b g1 g2 in
        Alcotest.(check bool) "in [0,1]" true (s >= 0. && s <= 1.);
        s
      in
      check_grid (Printf.sprintf "ged inst%d" i) ~unbudgeted:(Ged.similarity g1 g2) run)
    grid_instances

(* simulation refines downward: a bigger budget can only shrink the
   relation, and every truncated relation contains the exact one *)
let test_grid_simulation () =
  List.iteri
    (fun i t ->
      let g1 = t.Instance.g1 and g2 = t.Instance.g2 in
      List.iter
        (fun engine ->
          let exact = Sim.compute ~engine g1 g2 in
          let total sim =
            Array.fold_left (fun acc s -> acc + Phom_graph.Bitset.count s) 0 sim
          in
          let prev = ref max_int in
          List.iter
            (fun n ->
              let sim = Sim.compute ~engine ~budget:(Budget.trip_after n) g1 g2 in
              Alcotest.(check bool)
                (Printf.sprintf "sim inst%d trip %d contains exact" i n)
                true
                (Array.for_all2
                   (fun truncated ex ->
                     Phom_graph.Bitset.fold
                       (fun u acc -> acc && Phom_graph.Bitset.mem truncated u)
                       ex true)
                   sim exact);
              let c = total sim in
              Alcotest.(check bool)
                (Printf.sprintf "sim inst%d trip %d monotone" i n)
                true (c <= !prev);
              prev := c)
            trip_points)
        [ Sim.Naive; Sim.Hhk ])
    grid_instances

(* closures under-approximate: bits only ever appear as the budget grows,
   and all of them are bits of the full closure *)
let test_grid_closures () =
  let rng = Random.State.make [| 41 |] in
  let g =
    Phom_graph.Generators.erdos_renyi ~rng ~n:20 ~m:45 ~labels:(fun i ->
        "n" ^ string_of_int i)
  in
  let check_one name compute full =
    let count m =
      let c = ref 0 in
      for u = 0 to Phom_graph.Digraph.n g - 1 do
        Phom_graph.Bitmatrix.iter_row (fun _ -> incr c) m u
      done;
      !c
    in
    let subset a b =
      let ok = ref true in
      for u = 0 to Phom_graph.Digraph.n g - 1 do
        Phom_graph.Bitmatrix.iter_row
          (fun v -> if not (Phom_graph.Bitmatrix.get b u v) then ok := false)
          a u
      done;
      !ok
    in
    let prev = ref (-1) in
    List.iter
      (fun n ->
        let m = compute (Budget.trip_after n) in
        Alcotest.(check bool)
          (Printf.sprintf "%s trip %d under-approximates" name n)
          true (subset m full);
        let c = count m in
        Alcotest.(check bool)
          (Printf.sprintf "%s trip %d monotone" name n)
          true (c >= !prev);
        prev := c)
      trip_points
  in
  check_one "transitive_closure"
    (fun b -> TC.compute ~budget:b g)
    (TC.compute g);
  check_one "bounded_closure"
    (fun b -> BC.compute ~budget:b ~k:3 g)
    (BC.compute ~k:3 g)

(* decision procedures must stay sound: a budgeted answer, when given, must
   agree with the unbudgeted one *)
let test_grid_decide () =
  List.iteri
    (fun i t ->
      List.iter
        (fun injective ->
          let truth = Exact.decide ~injective t in
          List.iter
            (fun n ->
              let b = Budget.trip_after n in
              (match Exact.decide ~injective ~budget:b t with
              | None -> ()
              | some ->
                  Alcotest.(check bool)
                    (Printf.sprintf "exact.decide inst%d trip %d sound" i n)
                    true (some = truth));
              let pb = Budget.trip_after n in
              match Phom.Prefilter.decide ~injective ~budget:pb t with
              | None -> ()
              | some ->
                  Alcotest.(check bool)
                    (Printf.sprintf "prefilter.decide inst%d trip %d sound" i n)
                    true (some = truth))
            trip_points)
        [ false; true ])
    grid_instances

let test_grid_symmetric () =
  List.iteri
    (fun i t ->
      let run b =
        let m = Phom.Symmetric.max_card ~budget:b t in
        (* validate against the closed instance the mapping is for *)
        let closed = Phom.Symmetric.close_instance t in
        Alcotest.(check bool)
          (Printf.sprintf "symmetric inst%d valid" i)
          true
          (Instance.is_valid closed m);
        Instance.qual_card t m
      in
      check_grid
        (Printf.sprintf "symmetric inst%d" i)
        ~unbudgeted:(Instance.qual_card t (Phom.Symmetric.max_card t))
        run)
    grid_instances

(* ---- fork/join: the domain-safe sharing protocol ---- *)

let drain b =
  (* tick until the token trips, returning how many ticks it granted *)
  let n = ref 0 in
  let safety = ref 1_000_000 in
  while Budget.tick b && !safety > 0 do
    incr n;
    decr safety
  done;
  Alcotest.(check bool) "drain terminated" true (!safety > 0);
  !n

let test_fork_exact_family_cap () =
  (* however the children interleave, the family can consume exactly the
     parent's allowance — the lease grants partition it *)
  List.iter
    (fun total ->
      let parent = Budget.create ~steps:total () in
      let c1 = Budget.fork parent and c2 = Budget.fork parent in
      let n1 = drain c1 in
      let n2 = drain c2 in
      Alcotest.(check int)
        (Printf.sprintf "family of 2 consumes exactly %d" total)
        total (n1 + n2);
      Budget.join parent c1;
      Budget.join parent c2;
      Alcotest.(check int) "parent counts the family" total (Budget.steps_used parent);
      Alcotest.(check bool) "parent exhausted" true (Budget.exhausted parent);
      Alcotest.(check bool) "why = steps" true (Budget.why parent = Some Budget.Steps))
    [ 0; 1; 7; 128; 129; 1000 ]

let test_fork_of_tripped_parent () =
  let parent = Budget.trip_after 3 in
  ignore (drain parent);
  Alcotest.(check bool) "parent tripped" true (Budget.exhausted parent);
  let child = Budget.fork parent in
  Alcotest.(check bool) "child born tripped" false (Budget.tick child);
  Alcotest.(check bool) "child why = steps" true (Budget.why child = Some Budget.Steps)

let test_fork_untripped_family_completes () =
  (* an ample allowance: no child trips, and join folds consumption *)
  let parent = Budget.create ~steps:1_000_000 () in
  let children = List.init 4 (fun _ -> Budget.fork parent) in
  List.iter
    (fun c ->
      for _ = 1 to 50 do
        Alcotest.(check bool) "child runs" true (Budget.tick c)
      done)
    children;
  List.iter (fun c -> Budget.join parent c) children;
  Alcotest.(check int) "200 steps folded" 200 (Budget.steps_used parent);
  Alcotest.(check bool) "parent complete" true (Budget.status parent = Budget.Complete)

let test_cancel_propagates_to_children () =
  let parent = Budget.create () in
  let c1 = Budget.fork parent and c2 = Budget.fork parent in
  Alcotest.(check bool) "c1 runs" true (Budget.tick c1);
  Budget.cancel parent;
  Alcotest.(check bool) "c1 stops at poll" false (Budget.poll c1);
  Alcotest.(check bool) "c2 stops at poll" false (Budget.poll c2);
  Alcotest.(check bool) "c2 why = cancelled" true (Budget.why c2 = Some Budget.Cancelled)

let test_sibling_trip_propagates () =
  (* the first child to exhaust the ledger stops its siblings *)
  let parent = Budget.create ~steps:10 () in
  let c1 = Budget.fork parent and c2 = Budget.fork parent in
  ignore (drain c1);
  (* c1 ate the whole allowance *)
  Alcotest.(check bool) "sibling stops" false (Budget.tick c2);
  Alcotest.(check bool) "sibling why = steps" true (Budget.why c2 = Some Budget.Steps);
  Budget.join parent c1;
  Budget.join parent c2;
  Alcotest.(check bool) "parent exhausted" true (Budget.exhausted parent)

let test_join_validation () =
  let parent = Budget.create () in
  let stranger = Budget.create () in
  Alcotest.check_raises "join of a non-child"
    (Invalid_argument "Budget.join: not a forked token") (fun () ->
      Budget.join parent stranger)

let test_fork_across_domains () =
  (* the real thing: children ticked concurrently from spawned domains,
     total family consumption still exactly the parent's step cap *)
  let total = 50_000 in
  let parent = Budget.create ~steps:total () in
  let children = Array.init 4 (fun _ -> Budget.fork parent) in
  let counts =
    Array.map
      (fun c -> Domain.spawn (fun () -> drain c))
      children
    |> Array.map Domain.join
  in
  Alcotest.(check int)
    "family consumes exactly the cap" total
    (Array.fold_left ( + ) 0 counts);
  Array.iter (fun c -> Budget.join parent c) children;
  Alcotest.(check int) "parent ledger" total (Budget.steps_used parent);
  Alcotest.(check bool) "why = steps" true (Budget.why parent = Some Budget.Steps)

(* under a shared tripping budget the parallel fault grid cannot promise
   monotonicity (the trip lands on different subproblems depending on
   scheduling) — but validity and the family-wide cap must hold *)
let test_parallel_fault_grid () =
  Phom_parallel.Pool.with_pool ~domains:3 (fun pool ->
      let g =
        let rng = Random.State.make [| 61 |] in
        let n = 24 in
        let edges = ref [] in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if Random.State.float rng 1.0 < 0.3 then edges := (u, v) :: !edges
          done
        done;
        U.create ~weights:(Array.init n (fun i -> float_of_int (1 + (i mod 5)))) n !edges
      in
      List.iter
        (fun n ->
          let b = Budget.trip_after n in
          let s = Wis.max_weight_independent_set ~pool ~budget:b g in
          Alcotest.(check bool)
            (Printf.sprintf "valid IS at trip %d" n)
            true
            (U.is_independent g s);
          Alcotest.(check bool)
            (Printf.sprintf "never empty at trip %d" n)
            true (s <> []);
          let c = Wis.max_weight_clique ~pool ~budget:(Budget.trip_after n) g in
          Alcotest.(check bool)
            (Printf.sprintf "valid clique at trip %d" n)
            true (U.is_clique g c))
        trip_points)

let test_jobs1_equals_jobs4_under_budget () =
  (* deterministic seeds, ample budget: pool size must not change answers *)
  Phom_parallel.Pool.with_pool ~domains:4 (fun pool ->
      List.iteri
        (fun i t ->
          let solve p b = Phom.Api.solve_within ?pool:p ~partition:true ~budget:b Phom.Api.CPH t in
          let seq = solve None (Budget.create ~steps:50_000_000 ()) in
          let par = solve (Some pool) (Budget.create ~steps:50_000_000 ()) in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "inst%d same quality" i)
            seq.Phom.Api.quality par.Phom.Api.quality;
          Alcotest.(check bool)
            (Printf.sprintf "inst%d same mapping" i)
            true
            (seq.Phom.Api.mapping = par.Phom.Api.mapping))
        grid_instances)

let test_solve_within_deadline () =
  (* an already-expired deadline must still return a valid result with an
     Exhausted status, quickly *)
  let t = List.hd grid_instances in
  let b = Budget.create ~anchor:0. ~timeout:1.0 () in
  let r = Phom.Api.solve_within ~budget:b Phom.Api.CPH t in
  check_valid t r.Phom.Api.mapping;
  Alcotest.(check bool)
    "exhausted (deadline)" true
    (r.Phom.Api.status = Budget.Exhausted Budget.Deadline)

let test_solve_within_complete () =
  let t = List.hd grid_instances in
  let b = Budget.create ~steps:50_000_000 () in
  let r = Phom.Api.solve_within ~budget:b Phom.Api.CPH t in
  let r0 = Phom.Api.solve Phom.Api.CPH t in
  Alcotest.(check bool) "complete" true (r.Phom.Api.status = Budget.Complete);
  Alcotest.(check (float 1e-9)) "same quality" r0.Phom.Api.quality r.Phom.Api.quality

let suite =
  [
    ( "budget",
      [
        Alcotest.test_case "trip_after exact count" `Quick test_trip_after_exact_count;
        Alcotest.test_case "trip_after zero" `Quick test_trip_after_zero;
        Alcotest.test_case "unlimited" `Quick test_unlimited;
        Alcotest.test_case "deadline (expired anchor)" `Quick test_deadline_trips;
        Alcotest.test_case "deadline (busy loop)" `Quick test_deadline_busy_loop;
        Alcotest.test_case "cancel" `Quick test_cancel;
        Alcotest.test_case "cancel hook" `Quick test_cancel_hook;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "strings" `Quick test_strings;
      ] );
    ( "fault_grid",
      [
        Alcotest.test_case "compMaxCard" `Quick test_grid_comp_max_card;
        Alcotest.test_case "compMaxSim" `Quick test_grid_comp_max_sim;
        Alcotest.test_case "naive product" `Quick test_grid_naive;
        Alcotest.test_case "exact branch and bound" `Quick test_grid_exact;
        Alcotest.test_case "greedy via run_on" `Quick test_grid_greedy_via_run_on;
        Alcotest.test_case "wis approximations and exact clique" `Quick test_grid_wis;
        Alcotest.test_case "ullmann" `Quick test_grid_ullmann;
        Alcotest.test_case "mcs" `Quick test_grid_mcs;
        Alcotest.test_case "ged" `Quick test_grid_ged;
        Alcotest.test_case "simulation" `Quick test_grid_simulation;
        Alcotest.test_case "closures" `Quick test_grid_closures;
        Alcotest.test_case "decision procedures" `Quick test_grid_decide;
        Alcotest.test_case "symmetric" `Quick test_grid_symmetric;
        Alcotest.test_case "solve_within: expired deadline" `Quick test_solve_within_deadline;
        Alcotest.test_case "solve_within: ample budget" `Quick test_solve_within_complete;
      ] );
    ( "budget_fork",
      [
        Alcotest.test_case "exact family step cap" `Quick test_fork_exact_family_cap;
        Alcotest.test_case "fork of a tripped parent" `Quick test_fork_of_tripped_parent;
        Alcotest.test_case "untripped family completes" `Quick
          test_fork_untripped_family_completes;
        Alcotest.test_case "cancel propagates to children" `Quick
          test_cancel_propagates_to_children;
        Alcotest.test_case "sibling trip propagates" `Quick test_sibling_trip_propagates;
        Alcotest.test_case "join validation" `Quick test_join_validation;
        Alcotest.test_case "fork across real domains" `Quick test_fork_across_domains;
        Alcotest.test_case "parallel fault grid stays valid" `Quick test_parallel_fault_grid;
        Alcotest.test_case "jobs 1 = jobs 4 under ample budget" `Quick
          test_jobs1_equals_jobs4_under_budget;
      ] );
  ]
