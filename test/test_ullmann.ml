open Helpers
module Ull = Phom_baselines.Ullmann

let test_triangle_in_k4 () =
  let tri = graph [ "x"; "x"; "x" ] [ (0, 1); (1, 2); (2, 0) ] in
  let k4 =
    graph [ "x"; "x"; "x"; "x" ]
      [ (0, 1); (1, 2); (2, 0); (0, 3); (3, 1); (2, 3) ]
  in
  match Ull.find tri k4 with
  | Ull.Found m ->
      Alcotest.(check bool) "embedding" true (Ull.is_embedding tri k4 m)
  | _ -> Alcotest.fail "expected an embedding"

let test_labels_block () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "b" ] [] in
  Alcotest.(check (option bool)) "label mismatch" (Some false) (Ull.exists g1 g2)

let test_subdivision_blocks () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  Alcotest.(check (option bool)) "edge-to-edge only" (Some false)
    (Ull.exists g1 g2)

let test_non_induced () =
  (* non-induced semantics: extra data edges between images are fine *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b" ] [ (0, 1); (1, 0) ] in
  Alcotest.(check (option bool)) "extra back edge ok" (Some true)
    (Ull.exists g1 g2)

let test_self_loop () =
  let g1 = graph [ "a" ] [ (0, 0) ] in
  Alcotest.(check (option bool)) "needs a loop" (Some false)
    (Ull.exists g1 (graph [ "a" ] []));
  Alcotest.(check (option bool)) "finds a loop" (Some true)
    (Ull.exists g1 (graph [ "a" ] [ (0, 0) ]))

let test_budget () =
  let rng = Random.State.make [| 3 |] in
  let g1 = Phom_graph.Generators.erdos_renyi ~rng ~n:10 ~m:12 ~labels:(fun _ -> "x") in
  let g2 = Phom_graph.Generators.erdos_renyi ~rng ~n:12 ~m:30 ~labels:(fun _ -> "x") in
  match Ull.find ~budget:(Phom_graph.Budget.trip_after 3) g1 g2 with
  | Ull.Gave_up m -> Alcotest.(check bool) "partial is valid" true (Ull.is_partial_embedding g1 g2 m)
  | Ull.Found _ | Ull.Not_found_ -> Alcotest.fail "expected Gave_up"

let prop_found_is_embedding =
  qtest ~count:100 "ullmann: Found results are embeddings"
    (QCheck.Gen.pair (digraph_gen ~max_n:5 ()) (digraph_gen ~max_n:6 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      match Ull.find g1 g2 with
      | Ull.Found m -> Ull.is_embedding g1 g2 m
      | Ull.Not_found_ | Ull.Gave_up _ -> true)

let prop_iso_implies_one_one_phom =
  (* Section 3.2: subgraph isomorphism is a special case of 1-1 p-hom *)
  qtest ~count:80 "ullmann: subgraph iso ⟹ 1-1 p-hom"
    (QCheck.Gen.pair (digraph_gen ~max_n:4 ()) (digraph_gen ~max_n:5 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      match Ull.find g1 g2 with
      | Ull.Found m ->
          let t = eq_instance ~xi:1.0 g1 g2 in
          Instance.is_valid ~injective:true t m
          && Phom.Api.decide_one_one_phom t = Some true
      | Ull.Not_found_ | Ull.Gave_up _ -> true)

let prop_self_embedding =
  qtest ~count:80 "ullmann: every graph embeds in itself" (digraph_gen ())
    print_digraph (fun g -> Ull.exists g g = Some true)

let suite =
  [
    ( "ullmann",
      [
        Alcotest.test_case "triangle in K4" `Quick test_triangle_in_k4;
        Alcotest.test_case "labels block" `Quick test_labels_block;
        Alcotest.test_case "subdivision blocks" `Quick test_subdivision_blocks;
        Alcotest.test_case "non-induced semantics" `Quick test_non_induced;
        Alcotest.test_case "self loops" `Quick test_self_loop;
        Alcotest.test_case "budget" `Quick test_budget;
        prop_found_is_embedding;
        prop_iso_implies_one_one_phom;
        prop_self_embedding;
      ] );
  ]
