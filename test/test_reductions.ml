open Helpers
module R = Phom.Reductions
module Exact = Phom.Exact

let lit var positive = { R.var; positive }

(* (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ x3) — satisfiable *)
let sat_instance =
  {
    R.nvars = 4;
    clauses =
      [|
        (lit 0 true, lit 1 true, lit 2 true);
        (lit 0 false, lit 1 false, lit 3 true);
      |];
  }

(* all eight sign patterns over three variables — unsatisfiable *)
let unsat_instance =
  let c a b c' = (lit 0 a, lit 1 b, lit 2 c') in
  {
    R.nvars = 3;
    clauses =
      [|
        c true true true; c true true false; c true false true;
        c true false false; c false true true; c false true false;
        c false false true; c false false false;
      |];
  }

let test_brute_force_oracle () =
  Alcotest.(check bool) "sat" true (R.brute_force_sat sat_instance);
  Alcotest.(check bool) "unsat" false (R.brute_force_sat unsat_instance)

let test_3sat_reduction_sat () =
  let t = R.phom_of_3sat sat_instance in
  Alcotest.(check bool) "both DAGs" true
    (Phom_graph.Traversal.is_dag t.Instance.g1
    && Phom_graph.Traversal.is_dag t.Instance.g2);
  Alcotest.(check (option bool)) "p-hom iff satisfiable" (Some true)
    (Exact.decide t);
  (* and the mapping decodes to a satisfying assignment *)
  let e = Exact.solve ~objective:Exact.Cardinality t in
  let assignment = R.assignment_of_mapping sat_instance e.Exact.mapping in
  Alcotest.(check bool) "decoded assignment satisfies φ" true
    (R.eval_cnf3 sat_instance assignment)

let test_3sat_reduction_unsat () =
  let t = R.phom_of_3sat unsat_instance in
  Alcotest.(check (option bool)) "no p-hom" (Some false) (Exact.decide t)

(* the paper's worked gadget (Fig. 7): φ = C1 ∧ C2 with C1 = x1 ∨ x2 ∨ x3
   and C2 = x̄2 ∨ x3 ∨ x4 — pin the construction's shape *)
let test_fig7_gadget_shape () =
  let phi =
    {
      R.nvars = 4;
      clauses =
        [|
          (lit 0 true, lit 1 true, lit 2 true);
          (lit 1 false, lit 2 true, lit 3 true);
        |];
    }
  in
  let t = R.phom_of_3sat phi in
  (* V1 = {R1} ∪ {X1..X4} ∪ {C1, C2} *)
  Alcotest.(check int) "|V1|" 7 (D.n t.Instance.g1);
  (* V2 = {R2, T, F} ∪ {XT_i, XF_i} ∪ 8 constants per clause *)
  Alcotest.(check int) "|V2|" (3 + 8 + 16) (D.n t.Instance.g2);
  (* E'2 has 7×3 edges per clause, plus R2→{T,F} and T/F→XT/XF *)
  Alcotest.(check int) "|E2|" (2 + 8 + (2 * 21)) (D.nb_edges t.Instance.g2);
  Alcotest.(check (option bool)) "satisfiable" (Some true) (Phom.Exact.decide t)

let test_3sat_rejects_repeated_vars () =
  let bad =
    { R.nvars = 2; clauses = [| (lit 0 true, lit 0 false, lit 1 true) |] }
  in
  Alcotest.check_raises "distinct"
    (Invalid_argument "Reductions: clause variables must be distinct") (fun () ->
      ignore (R.phom_of_3sat bad))

(* X3C: universe {0..5}, triples where an exact cover exists *)
let x3c_yes =
  { R.universe = 6; triples = [| (0, 1, 2); (0, 1, 3); (3, 4, 5) |] }

(* no exact cover: every triple contains element 0 *)
let x3c_no =
  { R.universe = 6; triples = [| (0, 1, 2); (0, 3, 4); (0, 4, 5) |] }

let test_x3c_oracle () =
  Alcotest.(check bool) "yes" true (R.brute_force_x3c x3c_yes);
  Alcotest.(check bool) "no" false (R.brute_force_x3c x3c_no)

let test_x3c_reduction () =
  let t_yes = R.one_one_phom_of_x3c x3c_yes in
  Alcotest.(check bool) "G1 is a tree (DAG)" true
    (Phom_graph.Traversal.is_dag t_yes.Instance.g1);
  Alcotest.(check (option bool)) "cover ⟹ 1-1 p-hom" (Some true)
    (Exact.decide ~injective:true t_yes);
  (* plain p-hom is easier and also holds *)
  Alcotest.(check (option bool)) "plain holds too" (Some true)
    (Exact.decide t_yes);
  let t_no = R.one_one_phom_of_x3c x3c_no in
  Alcotest.(check (option bool)) "no cover ⟹ no 1-1 p-hom" (Some false)
    (Exact.decide ~injective:true t_no)

let test_mcp_reduction () =
  (* Corollary 4.2: full mapping exists iff boosted instance reaches
     qualCard = qualSim = 1 *)
  let check t =
    let boosted = R.mcp_of_phom t in
    let e = Exact.solve ~objective:Exact.Cardinality boosted in
    let card_one =
      Phom.Instance.qual_card boosted e.Exact.mapping >= 1.0 -. 1e-9
    in
    let w = Array.make (D.n t.Instance.g1) 1. in
    let es = Exact.solve ~objective:(Exact.Similarity w) boosted in
    let sim_one =
      Phom.Instance.qual_sim ~weights:w boosted es.Exact.mapping >= 1.0 -. 1e-9
    in
    (Exact.decide t, card_one && sim_one)
  in
  (* positive instance *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let yes = check (eq_instance g1 g2) in
  Alcotest.(check (pair (option bool) bool)) "positive" (Some true, true) yes;
  (* negative instance *)
  let g2' = graph [ "a"; "b" ] [ (1, 0) ] in
  let no = check (eq_instance g1 g2') in
  Alcotest.(check (pair (option bool) bool)) "negative" (Some false, false) no

let prop_mcp_reduction =
  Helpers.qtest ~count:80 "reductions: Corollary 4.2 on random instances"
    (Helpers.instance_gen ~max_n1:4 ~max_n2:5 ()) Helpers.print_instance
    (fun t ->
      let boosted = R.mcp_of_phom t in
      let e = Exact.solve ~objective:Exact.Cardinality boosted in
      match Exact.decide t with
      | None -> true
      | Some yes ->
          yes = (Phom.Instance.qual_card boosted e.Exact.mapping >= 1.0 -. 1e-9))

let test_wis_reduction () =
  (* path 0-1-2-3: max weight IS with weights 1,5,1,5 is {1,3} = 10 *)
  let g = Phom_wis.Ungraph.create ~weights:[| 1.; 5.; 1.; 5. |] 4
      [ (0, 1); (1, 2); (2, 3) ]
  in
  let t, weights = R.sph_of_wis g in
  let e = Exact.solve ~objective:(Exact.Similarity weights) t in
  Alcotest.(check bool) "optimal" true (e.Exact.status = Phom_graph.Budget.Complete);
  let s = R.independent_set_of_mapping e.Exact.mapping in
  Alcotest.(check bool) "independent" true (Phom_wis.Ungraph.is_independent g s);
  Alcotest.(check (float 1e-9)) "weight 10 of 12" (10. /. 12.)
    (Instance.qual_sim ~weights t e.Exact.mapping)

let gen_cnf : R.cnf3 QCheck.Gen.t =
 fun st ->
  let nvars = 3 + Random.State.int st 3 in
  let nclauses = 1 + Random.State.int st 5 in
  let clause _ =
    (* three distinct variables *)
    let a = Random.State.int st nvars in
    let b = (a + 1 + Random.State.int st (nvars - 1)) mod nvars in
    let rec pick_c () =
      let c = Random.State.int st nvars in
      if c = a || c = b then pick_c () else c
    in
    let c = pick_c () in
    let l v = { R.var = v; positive = Random.State.bool st } in
    (l a, l b, l c)
  in
  { R.nvars; clauses = Array.init nclauses clause }

let print_cnf phi =
  String.concat " ∧ "
    (Array.to_list
       (Array.map
          (fun (a, b, c) ->
            Printf.sprintf "(%s%d ∨ %s%d ∨ %s%d)"
              (if a.R.positive then "" else "¬")
              a.R.var
              (if b.R.positive then "" else "¬")
              b.R.var
              (if c.R.positive then "" else "¬")
              c.R.var)
          phi.R.clauses))

let prop_3sat_reduction_correct =
  qtest ~count:60 "reductions: p-hom decision = 3SAT satisfiability" gen_cnf
    print_cnf (fun phi ->
      Exact.decide (R.phom_of_3sat phi) = Some (R.brute_force_sat phi))

let gen_x3c : R.x3c QCheck.Gen.t =
 fun st ->
  let q = 1 + Random.State.int st 2 in
  let universe = 3 * q in
  let n = 1 + Random.State.int st 5 in
  let triple _ =
    let a = Random.State.int st universe in
    let b = (a + 1 + Random.State.int st (universe - 1)) mod universe in
    let rec pick_c () =
      let c = Random.State.int st universe in
      if c = a || c = b then pick_c () else c
    in
    (a, b, pick_c ())
  in
  { R.universe; triples = Array.init n triple }

let print_x3c inst =
  Printf.sprintf "universe=%d triples=%s" inst.R.universe
    (String.concat ";"
       (Array.to_list
          (Array.map (fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c)
             inst.R.triples)))

let prop_x3c_reduction_correct =
  qtest ~count:60 "reductions: 1-1 p-hom decision = X3C" gen_x3c print_x3c
    (fun inst ->
      inst.R.universe = 0
      || Exact.decide ~injective:true (R.one_one_phom_of_x3c inst)
         = Some (R.brute_force_x3c inst))

let suite =
  [
    ( "reductions",
      [
        Alcotest.test_case "SAT brute-force oracle" `Quick test_brute_force_oracle;
        Alcotest.test_case "3SAT gadget (satisfiable)" `Quick test_3sat_reduction_sat;
        Alcotest.test_case "3SAT gadget (unsatisfiable)" `Quick
          test_3sat_reduction_unsat;
        Alcotest.test_case "3SAT input validation" `Quick
          test_3sat_rejects_repeated_vars;
        Alcotest.test_case "Fig 7 gadget shape" `Quick test_fig7_gadget_shape;
        Alcotest.test_case "X3C brute-force oracle" `Quick test_x3c_oracle;
        Alcotest.test_case "X3C gadget" `Quick test_x3c_reduction;
        Alcotest.test_case "p-hom → MCP/MSP (Corollary 4.2)" `Quick
          test_mcp_reduction;
        prop_mcp_reduction;
        Alcotest.test_case "WIS → SPH (Theorem 4.3)" `Quick test_wis_reduction;
        prop_3sat_reduction_correct;
        prop_x3c_reduction_correct;
      ] );
  ]
