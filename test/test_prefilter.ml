open Helpers
module Prefilter = Phom.Prefilter
module Exact = Phom.Exact

let test_prunes_unsupported () =
  (* g1: a→b; g2 has an 'a' that reaches a 'b' and an 'a' that doesn't *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "a"; "b" ] [ (0, 2) ] in
  let t = eq_instance g1 g2 in
  let c = Prefilter.refine t in
  Alcotest.(check (array int)) "only the good a" [| 0 |] c.(0);
  Alcotest.(check (array int)) "b kept" [| 2 |] c.(1)

let test_propagates () =
  (* chain a→b→c: g2's b loses support (no c below it), which then kills a *)
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  let t = eq_instance g1 g2 in
  let c = Prefilter.refine t in
  Alcotest.(check int) "b pruned" 0 (Array.length c.(1));
  Alcotest.(check int) "a pruned transitively" 0 (Array.length c.(0));
  Alcotest.(check (option bool)) "decide short-circuits" (Some false)
    (Prefilter.decide t)

let test_keeps_valid_instances () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let t = eq_instance g1 g2 in
  Alcotest.(check (option bool)) "still decides yes" (Some true)
    (Prefilter.decide t)

let prop_agrees_with_exact =
  qtest ~count:150 "prefilter: decide agrees with Exact.decide"
    (instance_gen ()) print_instance (fun t ->
      match (Prefilter.decide t, Exact.decide t) with
      | Some a, Some b -> a = b
      | _ -> true)

let prop_agrees_injective =
  qtest ~count:100 "prefilter: 1-1 decide agrees too" (instance_gen ())
    print_instance (fun t ->
      match (Prefilter.decide ~injective:true t, Exact.decide ~injective:true t) with
      | Some a, Some b -> a = b
      | _ -> true)

let prop_subset_of_candidates =
  qtest ~count:100 "prefilter: refined sets are candidate subsets"
    (instance_gen ()) print_instance (fun t ->
      let full = Instance.candidates t in
      let refined = Prefilter.refine t in
      Array.for_all Fun.id
        (Array.mapi
           (fun v row ->
             Array.for_all (fun u -> Array.mem u full.(v)) row)
           refined))

let prop_total_mappings_survive =
  qtest ~count:100 "prefilter: total mappings only use surviving pairs"
    (instance_gen ~max_n1:4 ~max_n2:5 ()) print_instance (fun t ->
      match Exact.decide t with
      | Some true ->
          (* find a total mapping and check all its pairs survive *)
          let e = Exact.solve ~objective:Exact.Cardinality t in
          let refined = Prefilter.refine t in
          Mapping.size e.Exact.mapping < D.n t.g1
          || List.for_all (fun (v, u) -> Array.mem u refined.(v)) e.Exact.mapping
      | _ -> true)

let suite =
  [
    ( "prefilter",
      [
        Alcotest.test_case "prunes unsupported candidates" `Quick
          test_prunes_unsupported;
        Alcotest.test_case "propagates to a fixpoint" `Quick test_propagates;
        Alcotest.test_case "keeps positive instances" `Quick
          test_keeps_valid_instances;
        prop_agrees_with_exact;
        prop_agrees_injective;
        prop_subset_of_candidates;
        prop_total_mappings_survive;
      ] );
  ]
