(* Robustness of the multiplexed daemon: the widened exception guard, the
   bounded line reader and fault grid at the Conn level, idle eviction,
   admission control (connections and pending solves), the
   stalled-client-does-not-block-others property, mid-solve disconnects,
   and client retry with back-off against a busy daemon. *)

module Budget = Phom_graph.Budget
module Protocol = Phom_server.Protocol
module Daemon = Phom_server.Daemon
module Client = Phom_server.Client
module Conn = Phom_server.Conn
module Faults = Phom_server.Faults
module Lru = Phom_server.Lru

let fig1_pattern = Filename.concat "../data" "fig1_pattern.phg"
let fig1_store = Filename.concat "../data" "fig1_store.phg"

let ok_or_fail = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let check_prefix name prefix reply =
  if
    not
      (String.length reply >= String.length prefix
      && String.sub reply 0 (String.length prefix) = prefix)
  then Alcotest.failf "%s: expected %S..., got %S" name prefix reply

(* run [f addr] against a live daemon on a fresh socket; joins the server
   and asserts the socket was unlinked *)
let with_daemon ?(config = Daemon.default_config) f =
  let dir = Filename.temp_file "phomd_robust" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "d.sock" in
  let ready_lock = Mutex.create () and ready_cond = Condition.create () in
  let is_ready = ref false in
  let config = { config with Daemon.socket_path = Some sock } in
  let server =
    Domain.spawn (fun () ->
        Daemon.serve
          ~ready:(fun _ ->
            Mutex.lock ready_lock;
            is_ready := true;
            Condition.signal ready_cond;
            Mutex.unlock ready_lock)
          config)
  in
  Mutex.lock ready_lock;
  while not !is_ready do
    Condition.wait ready_cond ready_lock
  done;
  Mutex.unlock ready_lock;
  let addr = ok_or_fail (Client.sockaddr_of_string sock) in
  (* admission control races with connection teardown: a just-closed peer
     still counts as live until the daemon reads its EOF, so a one-shot
     request right after a close can be shed busy — retry through it *)
  let patient = { Client.retries = 20; delay = 0.05; max_delay = 0.2 } in
  Fun.protect
    ~finally:(fun () ->
      Faults.clear ();
      (* best-effort shutdown in case the test failed before its own *)
      ignore
        (Client.request ~connect_timeout:5. ~read_timeout:5. ~backoff:patient
           addr "shutdown");
      Domain.join server;
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock);
      Unix.rmdir dir)
    (fun () -> f addr)

let patient_backoff = { Client.retries = 20; delay = 0.05; max_delay = 0.2 }

let ask ?(read_timeout = 10.) addr line =
  ok_or_fail (Client.request ~read_timeout ~backoff:patient_backoff addr line)

let load_fig1 addr =
  check_prefix "load pat" "ok loaded graph pat"
    (ask addr ("load graph pat " ^ fig1_pattern));
  check_prefix "load store" "ok loaded graph store"
    (ask addr ("load graph store " ^ fig1_store))

(* ---- the widened exception guard ---- *)

let test_internal_error_opaque () =
  let st = Daemon.make_state Daemon.default_config in
  Faults.set_execute_hook (Some (fun () -> raise Not_found));
  Fun.protect ~finally:Faults.clear (fun () ->
      let reply, next = Daemon.execute st Protocol.Version in
      Alcotest.(check string) "opaque reply" "error internal" reply;
      Alcotest.(check bool) "connection survives" true (next = `Continue));
  (* user-level errors still keep their message *)
  Faults.set_execute_hook (Some (fun () -> failwith "told you so"));
  Fun.protect ~finally:Faults.clear (fun () ->
      let reply, _ = Daemon.execute st Protocol.Version in
      Alcotest.(check string) "Failure passes through" "error told you so" reply);
  (* and the daemon keeps answering afterwards *)
  let reply, _ = Daemon.execute st Protocol.Version in
  check_prefix "still alive" "ok phomd" reply

(* ---- Conn: bounded reader and fault grid (socketpair, no daemon) ---- *)

let with_pair f =
  let daemon_fd, peer_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock daemon_fd;
  Fun.protect
    ~finally:(fun () ->
      Faults.clear ();
      (try Unix.close daemon_fd with Unix.Unix_error _ -> ());
      try Unix.close peer_fd with Unix.Unix_error _ -> ())
    (fun () -> f daemon_fd peer_fd)

let write_str fd s =
  let b = Bytes.of_string s in
  let n = Unix.write fd b 0 (Bytes.length b) in
  Alcotest.(check int) "test-side write completes" (Bytes.length b) n

let read_outcome =
  Alcotest.of_pp (fun ppf o ->
      Fmt.string ppf
        (match o with
        | Conn.Progress -> "Progress"
        | Conn.Line_too_long -> "Line_too_long"
        | Conn.Peer_closed -> "Peer_closed"))

let test_conn_bounded_reader () =
  with_pair (fun daemon_fd peer_fd ->
      let c = Conn.create ~max_line:8 ~idle_timeout:None ~now:0. daemon_fd in
      (* a line exactly at the bound passes *)
      write_str peer_fd "12345678\n";
      Alcotest.check read_outcome "at bound" Conn.Progress (Conn.handle_read c);
      Alcotest.(check (option string)) "line delivered" (Some "12345678")
        (Conn.next_line c);
      (* one byte over trips the bound, even split across reads *)
      write_str peer_fd "12345";
      Alcotest.check read_outcome "under bound so far" Conn.Progress
        (Conn.handle_read c);
      write_str peer_fd "6789\n";
      Alcotest.check read_outcome "over bound" Conn.Line_too_long
        (Conn.handle_read c);
      (* an overflowed connection stops reading *)
      Alcotest.(check bool) "no more reads" false (Conn.want_read c))

let test_conn_unterminated_flood () =
  with_pair (fun daemon_fd peer_fd ->
      let c = Conn.create ~max_line:16 ~idle_timeout:None ~now:0. daemon_fd in
      (* a peer that never sends the newline must still be bounded *)
      write_str peer_fd (String.make 64 'x');
      Alcotest.check read_outcome "unterminated overflow" Conn.Line_too_long
        (Conn.handle_read c))

let test_conn_fault_grid () =
  (* short read: one byte at a time still assembles a full line *)
  with_pair (fun daemon_fd peer_fd ->
      let c = Conn.create ~max_line:64 ~idle_timeout:None ~now:0. daemon_fd in
      Faults.inject Faults.Read ~after:0 Faults.Short;
      Faults.inject Faults.Read ~after:1 Faults.Short;
      write_str peer_fd "ab\n";
      Alcotest.check read_outcome "short 1" Conn.Progress (Conn.handle_read c);
      Alcotest.check read_outcome "short 2" Conn.Progress (Conn.handle_read c);
      Alcotest.check read_outcome "rest" Conn.Progress (Conn.handle_read c);
      Alcotest.(check (option string)) "line assembled" (Some "ab")
        (Conn.next_line c);
      Alcotest.(check int) "plan fully fired" 0 (Faults.armed ()));
  (* EINTR is absorbed, not fatal *)
  with_pair (fun daemon_fd peer_fd ->
      let c = Conn.create ~max_line:64 ~idle_timeout:None ~now:0. daemon_fd in
      Faults.inject Faults.Read ~after:0 Faults.Eintr;
      write_str peer_fd "ping\n";
      Alcotest.check read_outcome "EINTR absorbed" Conn.Progress
        (Conn.handle_read c);
      Alcotest.check read_outcome "retry reads" Conn.Progress
        (Conn.handle_read c);
      Alcotest.(check (option string)) "line survives EINTR" (Some "ping")
        (Conn.next_line c));
  (* mid-line disconnect: partial line then EOF *)
  with_pair (fun daemon_fd peer_fd ->
      let c = Conn.create ~max_line:64 ~idle_timeout:None ~now:0. daemon_fd in
      write_str peer_fd "solve card pat sto";
      Alcotest.check read_outcome "partial" Conn.Progress (Conn.handle_read c);
      Faults.inject Faults.Read ~after:0 Faults.Disconnect;
      Alcotest.check read_outcome "mid-line EOF" Conn.Peer_closed
        (Conn.handle_read c);
      Alcotest.(check (option string)) "no phantom line" None (Conn.next_line c));
  (* short writes: the reply drains over several flushes *)
  with_pair (fun daemon_fd peer_fd ->
      let c = Conn.create ~max_line:64 ~idle_timeout:None ~now:0. daemon_fd in
      Faults.inject Faults.Write ~after:0 Faults.Short;
      Faults.inject Faults.Write ~after:1 Faults.Short;
      Conn.send_line c "ok done";
      while Conn.want_write c do
        Conn.handle_write c
      done;
      let b = Bytes.create 64 in
      let n = Unix.read peer_fd b 0 64 in
      Alcotest.(check string) "reply intact" "ok done\n" (Bytes.sub_string b 0 n));
  (* write fault: EPIPE closes the connection instead of raising *)
  with_pair (fun daemon_fd _peer_fd ->
      let c = Conn.create ~max_line:64 ~idle_timeout:None ~now:0. daemon_fd in
      Faults.inject Faults.Write ~after:0 Faults.Disconnect;
      Conn.send_line c "ok never-arrives";
      Conn.handle_write c;
      Alcotest.(check bool) "closed, not raised" false (Conn.is_open c))

let test_conn_deadline () =
  with_pair (fun daemon_fd _peer_fd ->
      let c =
        Conn.create ~max_line:64 ~idle_timeout:(Some 10.) ~now:100. daemon_fd
      in
      Alcotest.(check bool) "fresh" false (Conn.expired c ~now:105.);
      Alcotest.(check bool) "expired" true (Conn.expired c ~now:110.);
      Conn.touch c ~now:109.;
      Alcotest.(check bool) "touch re-arms" false (Conn.expired c ~now:115.);
      Alcotest.(check (float 1e-9)) "deadline" 119. (Conn.deadline c))

(* ---- idle eviction over a live socket ---- *)

let test_idle_eviction () =
  let config =
    { Daemon.default_config with Daemon.idle_timeout = Some 0.3 }
  in
  with_daemon ~config (fun addr ->
      let conn = ok_or_fail (Client.connect addr) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (* send nothing; the daemon must evict us with a reason *)
          let reply = ok_or_fail (Client.receive ~timeout:5. conn) in
          Alcotest.(check string) "evicted with a reason" "error idle-timeout"
            reply;
          match Client.receive ~timeout:5. conn with
          | Error _ -> ()
          | Ok l -> Alcotest.failf "expected close after eviction, got %S" l);
      (* the daemon is unharmed *)
      check_prefix "still serving" "ok phomd" (ask addr "version"))

(* ---- a stalled client does not block a healthy one ---- *)

let test_stalled_client_does_not_block () =
  let config =
    { Daemon.default_config with Daemon.jobs = 3; idle_timeout = Some 30. }
  in
  with_daemon ~config (fun addr ->
      load_fig1 addr;
      (* a silent connection and a half-line trickler, both left hanging *)
      let stalled = ok_or_fail (Client.connect addr) in
      let trickler = ok_or_fail (Client.connect addr) in
      ok_or_fail (Client.post trickler "solve card pat sto");
      Fun.protect
        ~finally:(fun () ->
          Client.close stalled;
          Client.close trickler)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let reply =
            ok_or_fail
              (Client.request ~read_timeout:10. addr
                 "solve card pat store --sim shingles --xi 0.5")
          in
          let dt = Unix.gettimeofday () -. t0 in
          check_prefix "healthy solve" "ok solve problem=CPH" reply;
          Alcotest.(check bool) "status complete" true
            (Helpers.count_substring ~needle:"status=complete" reply = 1);
          (* a generous bound: the stalled peers must not serialize us
             behind their 30 s idle timeout *)
          Alcotest.(check bool) "unblocked promptly" true (dt < 5.)))

(* ---- mid-solve disconnect ---- *)

let test_mid_solve_disconnect () =
  let config = { Daemon.default_config with Daemon.jobs = 3 } in
  with_daemon ~config (fun addr ->
      load_fig1 addr;
      Faults.set_solve_delay 0.3;
      let conn = ok_or_fail (Client.connect addr) in
      ok_or_fail
        (Client.post conn "solve card pat store --sim equality --hops 2");
      Client.close conn;
      Faults.set_solve_delay 0.;
      (* the orphaned solve must neither kill the daemon nor wedge it *)
      check_prefix "daemon alive" "ok phomd" (ask addr "version");
      Unix.sleepf 0.5;
      check_prefix "after orphan finished" "ok stats" (ask addr "stats"))

(* ---- admission control ---- *)

let test_busy_connections () =
  let config = { Daemon.default_config with Daemon.max_conns = 2 } in
  with_daemon ~config (fun addr ->
      let c1 = ok_or_fail (Client.connect addr) in
      let c2 = ok_or_fail (Client.connect addr) in
      Fun.protect
        ~finally:(fun () ->
          Client.close c1;
          Client.close c2)
        (fun () ->
          check_prefix "slot 1 usable" "ok phomd"
            (ok_or_fail (Client.send ~timeout:5. c1 "version"));
          check_prefix "slot 2 usable" "ok phomd"
            (ok_or_fail (Client.send ~timeout:5. c2 "version"));
          (* the third connection is shed with a retry hint *)
          let c3 = ok_or_fail (Client.connect addr) in
          Fun.protect
            ~finally:(fun () -> Client.close c3)
            (fun () ->
              let reply = ok_or_fail (Client.receive ~timeout:5. c3) in
              check_prefix "shed" "error busy retry-after=" reply;
              Alcotest.(check (option (float 1e-9))) "parsable hint" (Some 1.)
                (Client.retry_after_hint reply);
              (* and then cleanly closed *)
              match Client.receive ~timeout:5. c3 with
              | Error _ -> ()
              | Ok l -> Alcotest.failf "expected close after shed, got %S" l));
      (* releasing a slot readmits new connections *)
      Client.close c1;
      Unix.sleepf 0.1;
      check_prefix "readmitted" "ok phomd" (ask addr "version"))

let test_busy_pending_solves () =
  let config =
    { Daemon.default_config with Daemon.jobs = 2; max_pending = 1 }
  in
  with_daemon ~config (fun addr ->
      load_fig1 addr;
      Faults.set_solve_delay 0.4;
      let c1 = ok_or_fail (Client.connect addr) in
      let c2 = ok_or_fail (Client.connect addr) in
      Fun.protect
        ~finally:(fun () ->
          Faults.set_solve_delay 0.;
          Client.close c1;
          Client.close c2)
        (fun () ->
          ok_or_fail
            (Client.post c1 "solve card pat store --sim equality --hops 2");
          Unix.sleepf 0.1;
          (* the queue is full: the second solve is shed, but the
             connection survives to retry *)
          let reply =
            ok_or_fail (Client.send ~timeout:5. c2 "solve card pat store")
          in
          check_prefix "solve shed" "error busy retry-after=" reply;
          check_prefix "same connection still usable" "ok phomd"
            (ok_or_fail (Client.send ~timeout:5. c2 "version"));
          (* the first solve still completes *)
          let r1 = ok_or_fail (Client.receive ~timeout:10. c1) in
          check_prefix "first solve unharmed" "ok solve problem=CPH" r1))

(* ---- client retry with back-off ---- *)

let test_client_retry_backoff () =
  let config = { Daemon.default_config with Daemon.max_conns = 1 } in
  with_daemon ~config (fun addr ->
      let holder = ok_or_fail (Client.connect addr) in
      check_prefix "holder occupies the only slot" "ok phomd"
        (ok_or_fail (Client.send ~timeout:5. holder "version"));
      let releaser =
        Domain.spawn (fun () ->
            Unix.sleepf 0.4;
            Client.close holder)
      in
      Fun.protect
        ~finally:(fun () -> Domain.join releaser)
        (fun () ->
          (* one shot is shed... *)
          let shed = ok_or_fail (Client.request ~read_timeout:5. addr "version") in
          check_prefix "one-shot gets busy" "error busy retry-after=" shed;
          (* ...but retry with back-off lands once the slot frees up *)
          let backoff =
            { Client.retries = 8; delay = 0.05; max_delay = 0.2 }
          in
          let rng = Random.State.make [| 42 |] in
          let reply =
            ok_or_fail
              (Client.request ~read_timeout:5. ~backoff ~rng addr "version")
          in
          check_prefix "retry succeeds" "ok phomd" reply))

let test_retry_after_hint_parser () =
  Alcotest.(check (option (float 1e-9))) "well-formed" (Some 2.5)
    (Client.retry_after_hint "error busy retry-after=2.5");
  Alcotest.(check (option (float 1e-9))) "trailing tokens" (Some 1.)
    (Client.retry_after_hint "error busy retry-after=1 queue=32");
  Alcotest.(check (option (float 1e-9))) "not busy" None
    (Client.retry_after_hint "error unknown graph store");
  Alcotest.(check (option (float 1e-9))) "ok reply" None
    (Client.retry_after_hint "ok phomd 1.2.0 protocol 1");
  Alcotest.(check (option (float 1e-9))) "no hint" None
    (Client.retry_after_hint "error busy")

(* ---- unload racing in-flight solves must not resurrect artifacts ---- *)

let test_unload_never_resurrects () =
  let module Catalog = Phom_server.Catalog in
  let c = Catalog.create () in
  (* race a closure computation against the invalidation sweep: whatever
     the interleaving, a purged name must leave zero cached artifacts
     behind (the generation guard discards late put-backs) *)
  for _ = 1 to 20 do
    ignore (ok_or_fail (Catalog.load_graph c ~name:"store" ~path:fig1_store));
    let solver =
      Domain.spawn (fun () ->
          (* may race the unload: both success and unknown-graph are fine *)
          ignore (Catalog.closure c ~name:"store" ~hops:None))
    in
    ignore (ok_or_fail (Catalog.unload c "store"));
    Domain.join solver;
    Alcotest.(check int) "no artifact survives its graph" 0
      (Catalog.cache_stats c).Lru.entries
  done

(* ---- stale-socket detection at startup ---- *)

let test_stale_socket_detection () =
  (* against a live daemon, a second listener must refuse the socket *)
  with_daemon (fun addr ->
      let sock =
        match addr with Unix.ADDR_UNIX p -> p | _ -> assert false
      in
      (match Daemon.listen_unix sock with
      | exception Invalid_argument msg ->
          check_prefix "refusal names the socket" sock msg
      | fd, _ ->
          Unix.close fd;
          Alcotest.fail "must refuse a socket with a live daemon behind it");
      (* and the incumbent daemon is unharmed by the probe *)
      check_prefix "incumbent still serving" "ok phomd" (ask addr "version"));
  (* a stale socket left by a crash (bound, nobody accepting) is replaced *)
  let dir = Filename.temp_file "phomd_stale" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "d.sock" in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.unlink sock with Unix.Unix_error _ -> ());
      Unix.rmdir dir)
    (fun () ->
      let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind dead (Unix.ADDR_UNIX sock);
      (* no listen/accept: connect-probe fails, so the socket is stale *)
      Unix.close dead;
      let fd, _ = Daemon.listen_unix sock in
      Unix.close fd;
      Alcotest.(check bool) "stale socket was replaced" true
        (Sys.file_exists sock))

(* ---- listener permissions ---- *)

let test_listen_unix_permissions () =
  let dir = Filename.temp_file "phomd_perm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "d.sock" in
  let old_umask = Unix.umask 0o000 in
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.umask old_umask);
      (try Unix.unlink sock with Unix.Unix_error _ -> ());
      Unix.rmdir dir)
    (fun () ->
      let fd, _ = Daemon.listen_unix sock in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let st = Unix.lstat sock in
          Alcotest.(check int) "0600 despite a permissive umask" 0o600
            (st.Unix.st_perm land 0o777));
      (* a non-socket at the path is refused, not clobbered *)
      Unix.unlink sock;
      let oc = open_out sock in
      output_string oc "precious";
      close_out oc;
      (match Daemon.listen_unix sock with
      | exception Invalid_argument _ -> ()
      | fd, _ ->
          Unix.close fd;
          Alcotest.fail "must refuse to replace a regular file");
      let ic = open_in sock in
      let kept = input_line ic in
      close_in ic;
      Alcotest.(check string) "file untouched" "precious" kept)

let suite =
  [
    ( "daemon robustness",
      [
        Alcotest.test_case "internal errors are opaque" `Quick
          test_internal_error_opaque;
        Alcotest.test_case "bounded reader" `Quick test_conn_bounded_reader;
        Alcotest.test_case "unterminated flood bounded" `Quick
          test_conn_unterminated_flood;
        Alcotest.test_case "conn fault grid" `Quick test_conn_fault_grid;
        Alcotest.test_case "conn idle deadline" `Quick test_conn_deadline;
        Alcotest.test_case "idle eviction" `Quick test_idle_eviction;
        Alcotest.test_case "stalled client does not block" `Quick
          test_stalled_client_does_not_block;
        Alcotest.test_case "mid-solve disconnect" `Quick
          test_mid_solve_disconnect;
        Alcotest.test_case "busy: connection admission" `Quick
          test_busy_connections;
        Alcotest.test_case "busy: pending solves" `Quick
          test_busy_pending_solves;
        Alcotest.test_case "client retry with back-off" `Quick
          test_client_retry_backoff;
        Alcotest.test_case "retry-after parser" `Quick
          test_retry_after_hint_parser;
        Alcotest.test_case "unload never resurrects artifacts" `Quick
          test_unload_never_resurrects;
        Alcotest.test_case "stale socket detection" `Quick
          test_stale_socket_detection;
        Alcotest.test_case "unix socket permissions" `Quick
          test_listen_unix_permissions;
      ] );
  ]
