(* Protocol fuzzing: seeded-random byte strings and systematically garbled
   valid requests, pushed through Protocol.parse (must never raise, must
   classify every line) and through a live daemon socket (every reply must
   be a single well-formed ok/error line with no control bytes; the
   connection and the daemon must survive the whole barrage). *)

module Protocol = Phom_server.Protocol
module Daemon = Phom_server.Daemon
module Client = Phom_server.Client

let rng = Random.State.make [| 0x9e3779b9; 2026 |]

let random_byte_line st =
  let len = Random.State.int st 40 in
  String.init len (fun _ ->
      (* printable-heavy but with raw control bytes mixed in *)
      match Random.State.int st 10 with
      | 0 -> Char.chr (Random.State.int st 32)
      | 1 -> Char.chr (128 + Random.State.int st 128)
      | _ -> Char.chr (32 + Random.State.int st 95))

let valid_requests =
  [
    "version";
    "list";
    "stats";
    "load graph pat ../data/fig1_pattern.phg";
    "load mat mate ../data/fig1_mate.phs";
    "unload pat";
    "addedge pat 0 3";
    "deledge pat 0 1";
    "addedge store 2 9 --crc deadbeef";
    "deledge nosuch 99 -1";
    "solve card pat store --sim shingles --xi 0.5 --hops 2";
    "solve sim11 pat store --mat mate --timeout 1.5 --steps 100";
  ]

(* truncations, duplicated/deleted/swapped tokens, random in-place bytes *)
let garble st line =
  match Random.State.int st 5 with
  | 0 -> String.sub line 0 (Random.State.int st (String.length line + 1))
  | 1 ->
      let toks = String.split_on_char ' ' line in
      String.concat " " (List.filteri (fun i _ -> i <> Random.State.int st (List.length toks)) toks)
  | 2 ->
      let toks = String.split_on_char ' ' line in
      let t = List.nth toks (Random.State.int st (List.length toks)) in
      String.concat " " (toks @ [ t ])
  | 3 ->
      let b = Bytes.of_string line in
      if Bytes.length b = 0 then line
      else begin
        Bytes.set b (Random.State.int st (Bytes.length b))
          (Char.chr (Random.State.int st 256));
        Bytes.to_string b
      end
  | _ -> line ^ " " ^ random_byte_line st

let fuzz_corpus st n =
  List.init n (fun i ->
      if i mod 3 = 0 then random_byte_line st
      else
        garble st
          (List.nth valid_requests (Random.State.int st (List.length valid_requests))))

(* ---- parse never raises and always classifies ---- *)

let test_parse_total () =
  let lines = fuzz_corpus rng 3000 in
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "parse raised %s on %S" (Printexc.to_string e) line)
    lines

let test_parse_error_messages_one_line () =
  let lines = fuzz_corpus rng 2000 in
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Ok _ -> ()
      | Error m ->
          let reply = Protocol.sanitize ("error " ^ m) in
          (* '\n' is the multi-line reply framing and survives sanitize;
             every other control byte must be escaped away within a line *)
          String.iter
            (fun c ->
              if (c < ' ' && c <> '\n') || c = '\x7f' then
                Alcotest.failf
                  "sanitized reply for %S still has control byte %C" line c)
            reply)
    lines

(* ---- the live daemon survives the barrage ---- *)

let ok_or_fail = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let well_formed reply =
  let starts p =
    String.length reply >= String.length p
    && String.sub reply 0 (String.length p) = p
  in
  (* a stats reply is legitimately multi-line; every line must still be
     free of control bytes *)
  (starts "ok " || starts "error ")
  && List.for_all
       (fun l -> not (String.exists (fun c -> c < ' ' || c = '\x7f') l))
       (String.split_on_char '\n' reply)

let test_socket_fuzz () =
  let dir = Filename.temp_file "phomd_fuzz" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "d.sock" in
  let ready_lock = Mutex.create () and ready_cond = Condition.create () in
  let is_ready = ref false in
  let config =
    { Daemon.default_config with Daemon.socket_path = Some sock }
  in
  let server =
    Domain.spawn (fun () ->
        Daemon.serve
          ~ready:(fun _ ->
            Mutex.lock ready_lock;
            is_ready := true;
            Condition.signal ready_cond;
            Mutex.unlock ready_lock)
          config)
  in
  Mutex.lock ready_lock;
  while not !is_ready do
    Condition.wait ready_cond ready_lock
  done;
  Mutex.unlock ready_lock;
  let addr = ok_or_fail (Client.sockaddr_of_string sock) in
  Fun.protect
    ~finally:(fun () ->
      ignore (Client.request ~read_timeout:10. addr "shutdown");
      Domain.join server;
      Unix.rmdir dir)
    (fun () ->
      (* lockstep request/reply needs lines the daemon actually answers:
         non-empty after trimming, under the line bound, and not a
         shutdown/quit (those would end the run early) *)
      let usable line =
        String.trim line <> ""
        && (not (String.contains line '\n'))
        && String.length line < config.Daemon.max_line_bytes
        &&
        match Protocol.parse line with
        | Ok Protocol.Shutdown | Ok Protocol.Quit -> false
        | Ok _ | Error _ -> true
      in
      let corpus = List.filter usable (fuzz_corpus rng 500) in
      Alcotest.(check bool) "corpus not degenerate" true
        (List.length corpus > 300);
      (* one-shot connections for a sample, one pipelined connection for
         the bulk *)
      List.iteri
        (fun i line ->
          if i mod 25 = 0 then begin
            let reply = ok_or_fail (Client.request ~read_timeout:10. addr line) in
            if not (well_formed reply) then
              Alcotest.failf "malformed one-shot reply %S for %S" reply line
          end)
        corpus;
      let conn = ok_or_fail (Client.connect addr) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          List.iter
            (fun line ->
              match Client.send ~timeout:10. conn line with
              | Error m -> Alcotest.failf "connection died on %S: %s" line m
              | Ok reply ->
                  if not (well_formed reply) then
                    Alcotest.failf "malformed reply %S for %S" reply line)
            corpus);
      (* after all that, the daemon still answers sensibly *)
      let reply = ok_or_fail (Client.request ~read_timeout:10. addr "version") in
      Alcotest.(check string) "daemon intact"
        (Printf.sprintf "ok phomd %s protocol %d" Phom_server.Version.string
           Phom_server.Version.protocol)
        reply)

let suite =
  [
    ( "protocol fuzz",
      [
        Alcotest.test_case "parse is total" `Quick test_parse_total;
        Alcotest.test_case "sanitized errors are one clean line" `Quick
          test_parse_error_messages_one_line;
        Alcotest.test_case "live socket barrage" `Quick test_socket_fuzz;
      ] );
  ]
