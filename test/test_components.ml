open Helpers
module C = Phom_graph.Components

let test_basic () =
  let g = graph [ "a"; "b"; "c"; "d"; "e" ] [ (0, 1); (3, 2) ] in
  let c = C.compute g in
  Alcotest.(check int) "count" 3 c.C.count;
  Alcotest.(check bool) "0~1" true (c.C.comp.(0) = c.C.comp.(1));
  Alcotest.(check bool) "2~3 (direction ignored)" true (c.C.comp.(2) = c.C.comp.(3));
  Alcotest.(check bool) "4 alone" true
    (c.C.comp.(4) <> c.C.comp.(0) && c.C.comp.(4) <> c.C.comp.(2))

let test_members () =
  let g = graph [ "a"; "b"; "c" ] [ (2, 0) ] in
  let c = C.compute g in
  let members = C.members c in
  let sorted = List.sort compare (Array.to_list members) in
  Alcotest.(check (list (list int))) "members" [ [ 0; 2 ]; [ 1 ] ] sorted

let test_of_subset () =
  (* removing node 1 disconnects the chain 0-1-2 *)
  let g = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (list (list int))) "subset split" [ [ 0 ]; [ 2; 3 ] ]
    (C.of_subset g [ 0; 2; 3 ])

let prop_component_counts =
  qtest "components: singleton groups + edges connect" (digraph_gen ())
    print_digraph (fun g ->
      let c = C.compute g in
      D.fold_edges (fun u v acc -> acc && c.C.comp.(u) = c.C.comp.(v)) g true
      && Array.for_all (fun id -> id >= 0 && id < c.C.count) c.C.comp)

let suite =
  [
    ( "components",
      [
        Alcotest.test_case "weak components" `Quick test_basic;
        Alcotest.test_case "members" `Quick test_members;
        Alcotest.test_case "of_subset splits at removed nodes" `Quick test_of_subset;
        prop_component_counts;
      ] );
  ]
