(* Section 3.2's subsumption claims, as executable properties:
   - graph homomorphism is a special case of p-hom,
   - subgraph isomorphism is a special case of 1-1 p-hom (also covered from
     the Ullmann side in Test_ullmann),
   - the maximum-common-subgraph metric is a special case of CPH¹⁻¹
     (covered in Test_mcs). *)
open Helpers

(* a random quotient: merge nodes of g1 by a random surjection f; the image
   graph g2 with labels pulled back through f makes f a label-preserving
   edge-to-edge homomorphism g1 → g2 by construction *)
let quotient_gen : (D.t * D.t * int array) QCheck.Gen.t =
 fun st ->
  let g = digraph_gen ~min_n:2 ~max_n:8 () st in
  let n = D.n g in
  let k = 1 + Random.State.int st n in
  let f = Array.init n (fun _ -> Random.State.int st k) in
  (* class labels; g1's labels are re-pulled from its class *)
  let class_labels =
    Array.init k (fun _ ->
        small_labels.(Random.State.int st (Array.length small_labels)))
  in
  let g1 =
    D.map_labels (fun v _ -> class_labels.(f.(v))) g
  in
  let edges2 = List.map (fun (u, v) -> (f.(u), f.(v))) (D.edges g) in
  let g2 = D.make ~labels:class_labels ~edges:edges2 in
  (g1, g2, f)

let print_quotient (g1, g2, f) =
  Printf.sprintf "%s => %s via [%s]" (print_digraph g1) (print_digraph g2)
    (String.concat ";" (Array.to_list (Array.map string_of_int f)))

let prop_homomorphism_implies_phom =
  qtest ~count:120 "special cases: homomorphism ⟹ p-hom" quotient_gen
    print_quotient (fun (g1, g2, f) ->
      let t = eq_instance ~xi:1.0 g1 g2 in
      (* the homomorphism itself is a valid p-hom mapping (each edge maps to
         a path of length exactly 1) ... *)
      let mapping =
        Mapping.normalize (List.init (D.n g1) (fun v -> (v, f.(v))))
      in
      Instance.is_valid t mapping
      (* ... and the decision procedure agrees *)
      && Phom.Exact.decide t = Some true)

let prop_phom_does_not_imply_homomorphism =
  (* sanity in the other direction: p-hom can hold where no edge-to-edge
     homomorphism exists (the subdivision trick) — so the inclusion is
     strict *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1 ~name:"special cases: the inclusion is strict"
       (QCheck.make (fun _ -> ()))
       (fun () ->
         let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
         let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
         let t = eq_instance ~xi:1.0 g1 g2 in
         Phom.Exact.decide t = Some true
         && Phom_baselines.Ullmann.exists g1 g2 = Some false))

let suite =
  [
    ( "special_cases",
      [ prop_homomorphism_implies_phom; prop_phom_does_not_imply_homomorphism ] );
  ]
