(* Integration: the shipped data/ files drive the full pipeline — graph
   parsing, matrix parsing, and 1-1 p-hom matching reproduce Figure 1. *)
open Helpers
module IO = Phom_graph.Graph_io

let data path = Filename.concat "../data" path

let load_or_fail path =
  match IO.load (data path) with
  | Ok g -> g
  | Error e -> Alcotest.failf "loading %s: %s" path e

let test_fig1_files () =
  let gp = load_or_fail "fig1_pattern.phg" in
  let g = load_or_fail "fig1_store.phg" in
  Alcotest.(check int) "pattern size" 6 (D.n gp);
  Alcotest.(check int) "store size" 14 (D.n g);
  let mat =
    match Simmat.load (data "fig1_mate.phs") with
    | Ok m -> m
    | Error e -> Alcotest.failf "loading mate: %s" e
  in
  let t = Instance.make ~g1:gp ~g2:g ~mat ~xi:0.6 () in
  Alcotest.(check (option bool)) "Fig 1 matches from files" (Some true)
    (Phom.Api.decide_one_one_phom t);
  let r = Phom.Api.solve Phom.Api.CPH11 t in
  Alcotest.(check (float 1e-9)) "full quality" 1.0 r.Phom.Api.quality

let suite =
  [
    ( "data_files",
      [ Alcotest.test_case "Figure 1 from shipped files" `Quick test_fig1_files ] );
  ]
