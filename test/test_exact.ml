open Helpers
module Exact = Phom.Exact

let test_decide_simple () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let yes = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let no = graph [ "a"; "b" ] [ (1, 0) ] in
  Alcotest.(check (option bool)) "path target" (Some true)
    (Exact.decide (eq_instance g1 yes));
  Alcotest.(check (option bool)) "reversed target" (Some false)
    (Exact.decide (eq_instance g1 no))

let test_decide_budget () =
  (* adversarial-ish instance with a tiny budget gives None *)
  let rng = Random.State.make [| 11 |] in
  let g1 =
    Phom_graph.Generators.erdos_renyi ~rng ~n:12 ~m:20 ~labels:(fun _ -> "x")
  in
  let g2 =
    Phom_graph.Generators.erdos_renyi ~rng ~n:14 ~m:10 ~labels:(fun _ -> "x")
  in
  let t = eq_instance g1 g2 in
  Alcotest.(check (option bool)) "gives up" None (Exact.decide ~budget:(Phom_graph.Budget.trip_after 5) t)

let test_solve_optimal_flag () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "a" ] [] in
  let t = eq_instance g1 g2 in
  let r = Exact.solve ~objective:Exact.Cardinality t in
  Alcotest.(check bool) "optimal" true (r.Exact.status = Phom_graph.Budget.Complete);
  Alcotest.(check (float 1e-9)) "quality 1" 1.0 (Instance.qual_card t r.Exact.mapping)

let test_similarity_objective () =
  (* cardinality would map both light nodes; similarity prefers the heavy *)
  let g1 = graph [ "a"; "b" ] [] and g2 = graph [ "a" ] [] in
  let mat = Simmat.of_fun ~n1:2 ~n2:1 (fun _ _ -> 1.0) in
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let r =
    Exact.solve ~injective:true ~objective:(Exact.Similarity [| 1.; 5. |]) t
  in
  check_mapping "heavy node kept" [ (1, 0) ] r.Exact.mapping

(* brute-force oracle: enumerate every partial function over small search
   spaces and keep the best valid one *)
let brute_force_best (t : Instance.t) =
  let n1 = D.n t.g1 and n2 = D.n t.g2 in
  let best = ref 0 in
  let rec go v acc =
    if v = n1 then begin
      let m = Mapping.normalize acc in
      if Instance.is_valid t m then best := max !best (Mapping.size m)
    end
    else begin
      go (v + 1) acc;
      for u = 0 to n2 - 1 do
        go (v + 1) ((v, u) :: acc)
      done
    end
  in
  go 0 [];
  !best

let prop_matches_brute_force =
  qtest ~count:60 "exact: agrees with brute force"
    (instance_gen ~max_n1:3 ~max_n2:4 ()) print_instance (fun t ->
      let r = Exact.solve ~objective:Exact.Cardinality t in
      r.Exact.status = Phom_graph.Budget.Complete && Mapping.size r.Exact.mapping = brute_force_best t)

let prop_decide_iff_full_mapping =
  qtest ~count:100 "exact: decide ⟺ optimum covers G1"
    (instance_gen ~max_n1:4 ~max_n2:5 ()) print_instance (fun t ->
      let d = Exact.decide t in
      let r = Exact.solve ~objective:Exact.Cardinality t in
      match d with
      | None -> true
      | Some yes -> yes = (Mapping.size r.Exact.mapping = D.n t.g1))

let prop_solution_valid =
  qtest ~count:100 "exact: solutions valid under both objectives"
    (instance_gen ()) print_instance (fun t ->
      let w = Array.make (D.n t.g1) 2. in
      Instance.is_valid t (Exact.solve ~objective:Exact.Cardinality t).Exact.mapping
      && Instance.is_valid ~injective:true t
           (Exact.solve ~injective:true ~objective:(Exact.Similarity w) t)
             .Exact.mapping)

let suite =
  [
    ( "exact",
      [
        Alcotest.test_case "decide" `Quick test_decide_simple;
        Alcotest.test_case "decide budget" `Quick test_decide_budget;
        Alcotest.test_case "optimality flag" `Quick test_solve_optimal_flag;
        Alcotest.test_case "similarity objective" `Quick test_similarity_objective;
        prop_matches_brute_force;
        prop_decide_iff_full_mapping;
        prop_solution_valid;
      ] );
  ]
