(* Tree decompositions: validity of the elimination-order construction and
   of the nice rewrite, plus the width guarantees the DP's auto-selection
   leans on — exact on trees, series-parallel graphs and full k-trees. *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module Td = Phom_treedecomp.Treedecomp

let lbl _ = "x"

let ok_or_fail name = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e

let check_both name g =
  List.iter
    (fun (hname, h) ->
      let td = Td.compute ~heuristic:h g in
      ok_or_fail (name ^ " " ^ hname) (Td.check g td);
      let nt = Td.nice td in
      ok_or_fail (name ^ " " ^ hname ^ " nice") (Td.check_nice g nt);
      Alcotest.(check int)
        (name ^ " " ^ hname ^ " widths agree")
        td.Td.width nt.Td.nwidth)
    [ ("min-degree", Td.Min_degree); ("min-fill", Td.Min_fill) ]

let test_random_graphs () =
  for seed = 0 to 39 do
    let rng = Random.State.make [| 0xdec0; seed |] in
    let n = 1 + Random.State.int rng 12 in
    let m = min (Random.State.int rng (2 * n)) (n * (n - 1) / 2) in
    check_both
      (Printf.sprintf "er seed %d" seed)
      (G.erdos_renyi ~rng ~n ~m ~labels:lbl)
  done

let test_structured_graphs () =
  for seed = 0 to 19 do
    let rng = Random.State.make [| 0xdec1; seed |] in
    let n = 2 + Random.State.int rng 14 in
    check_both (Printf.sprintf "tree seed %d" seed) (G.random_tree ~rng ~n ~labels:lbl);
    check_both
      (Printf.sprintf "sp seed %d" seed)
      (G.series_parallel ~rng ~n ~labels:lbl);
    check_both
      (Printf.sprintf "ktree seed %d" seed)
      (G.random_ktree ~rng ~n ~k:3 ~labels:lbl ());
    check_both
      (Printf.sprintf "partial ktree seed %d" seed)
      (G.random_ktree ~rng ~n ~k:3 ~keep:0.6 ~labels:lbl ())
  done

let test_width_guarantees () =
  for seed = 0 to 19 do
    let rng = Random.State.make [| 0xdec2; seed |] in
    let n = 5 + Random.State.int rng 20 in
    let tree = G.random_tree ~rng ~n ~labels:lbl in
    Alcotest.(check int)
      (Printf.sprintf "tree width seed %d" seed)
      1
      (Td.width tree);
    let sp = G.series_parallel ~rng ~n ~labels:lbl in
    Alcotest.(check bool)
      (Printf.sprintf "sp width <= 2 seed %d" seed)
      true
      (Td.width sp <= 2);
    (* a full k-tree is chordal with clique number k+1: the min-degree
       order eliminates simplicial vertices, so the bound is tight *)
    let kt = G.random_ktree ~rng ~n ~k:3 ~labels:lbl () in
    Alcotest.(check int) (Printf.sprintf "ktree width seed %d" seed) 3 (Td.width kt)
  done

let test_degenerate () =
  let empty = D.make ~labels:[||] ~edges:[] in
  Alcotest.(check int) "empty width" (-1) (Td.width empty);
  let nt = Td.nice (Td.compute empty) in
  Alcotest.(check int) "empty nice is one leaf" 1 (Array.length nt.Td.nkind);
  ok_or_fail "empty nice" (Td.check_nice empty nt);
  let single = D.make ~labels:[| "a" |] ~edges:[ (0, 0) ] in
  Alcotest.(check int) "self-loop single width" 0 (Td.width single);
  check_both "self-loop single" single;
  (* disconnected components must still merge into one rooted nice tree *)
  let islands = D.make ~labels:[| "a"; "b"; "c" |] ~edges:[] in
  check_both "islands" islands;
  let nt = Td.nice (Td.compute islands) in
  Alcotest.(check int)
    "islands root is last node"
    (Array.length nt.Td.nkind - 1)
    nt.Td.root

let test_directions_irrelevant () =
  (* width is a property of the underlying undirected graph *)
  let g = D.make ~labels:[| "a"; "b"; "c" |] ~edges:[ (0, 1); (1, 2) ] in
  let r = D.make ~labels:[| "a"; "b"; "c" |] ~edges:[ (1, 0); (2, 1) ] in
  Alcotest.(check int) "reversed same width" (Td.width g) (Td.width r)

let suite =
  [
    ( "treedecomp",
      [
        Alcotest.test_case "random graphs valid" `Quick test_random_graphs;
        Alcotest.test_case "structured graphs valid" `Quick test_structured_graphs;
        Alcotest.test_case "width guarantees" `Quick test_width_guarantees;
        Alcotest.test_case "degenerate graphs" `Quick test_degenerate;
        Alcotest.test_case "directions irrelevant" `Quick test_directions_irrelevant;
      ] );
  ]
