open Helpers
module Bounded = Phom_graph.Bounded_closure

let chain () = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (1, 2); (2, 3) ]

let test_k1_is_edges () =
  let g = chain () in
  let m = Bounded.compute ~k:1 g in
  Alcotest.(check int) "3 edges" 3 (BM.count m);
  Alcotest.(check bool) "0->1" true (BM.get m 0 1);
  Alcotest.(check bool) "no skip" false (BM.get m 0 2)

let test_k2 () =
  let g = chain () in
  let m = Bounded.compute ~k:2 g in
  Alcotest.(check bool) "skip one" true (BM.get m 0 2);
  Alcotest.(check bool) "not two" false (BM.get m 0 3)

let test_k0 () =
  Alcotest.(check int) "empty" 0 (BM.count (Bounded.compute ~k:0 (chain ())))

let test_large_k_is_tc () =
  let g = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "k=n equals closure" true
    (BM.equal (Bounded.compute ~k:3 g) (TC.compute g))

let test_self_loop_counts_one_hop () =
  let g = graph [ "a" ] [ (0, 0) ] in
  Alcotest.(check bool) "loop at k=1" true (BM.get (Bounded.compute ~k:1 g) 0 0)

let test_distances_within () =
  let g = chain () in
  Alcotest.(check (array int)) "capped at 2" [| -1; 1; 2; -1 |]
    (Bounded.distances_within ~k:2 g 0)

let test_bounded_matching () =
  (* a 3-hop stretch: matched at k=3 but not k=2 *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "y"; "b" ] [ (0, 1); (1, 2); (2, 3) ] in
  let decide k =
    let tc2 = Bounded.compute ~k g2 in
    let t =
      Instance.make ~tc2 ~g1 ~g2 ~mat:(Simmat.of_label_equality g1 g2) ~xi:0.5 ()
    in
    Phom.Exact.decide t
  in
  Alcotest.(check (option bool)) "k=2 fails" (Some false) (decide 2);
  Alcotest.(check (option bool)) "k=3 matches" (Some true) (decide 3)

let prop_monotone_in_k =
  qtest ~count:60 "bounded closure: monotone in k" (digraph_gen ~max_n:8 ())
    print_digraph (fun g ->
      let m2 = Bounded.compute ~k:2 g and m4 = Bounded.compute ~k:4 g in
      let ok = ref true in
      for u = 0 to D.n g - 1 do
        for v = 0 to D.n g - 1 do
          if BM.get m2 u v && not (BM.get m4 u v) then ok := false
        done
      done;
      !ok)

let prop_k_n_equals_tc =
  qtest ~count:60 "bounded closure: k=n is the transitive closure"
    (digraph_gen ~max_n:8 ()) print_digraph (fun g ->
      BM.equal (Bounded.compute ~k:(max 1 (D.n g)) g) (TC.compute g))

let prop_matches_bfs_oracle =
  qtest ~count:60 "bounded closure: agrees with capped BFS"
    (digraph_gen ~max_n:7 ()) print_digraph (fun g ->
      let k = 3 in
      let m = Bounded.compute ~k g in
      let ok = ref true in
      for v = 0 to D.n g - 1 do
        let d = Bounded.distances_within ~k g v in
        for u = 0 to D.n g - 1 do
          if BM.get m v u <> (d.(u) >= 1) then ok := false
        done
      done;
      !ok)

let prop_optimum_monotone_in_k =
  qtest ~count:50 "bounded matching: exact optimum monotone in k"
    (QCheck.Gen.pair (digraph_gen ~max_n:4 ()) (digraph_gen ~max_n:6 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      let mat = Simmat.of_label_equality g1 g2 in
      let opt k =
        let tc2 = Bounded.compute ~k g2 in
        let t = Instance.make ~tc2 ~g1 ~g2 ~mat ~xi:0.5 () in
        Mapping.size
          (Phom.Exact.solve ~objective:Phom.Exact.Cardinality t).Phom.Exact.mapping
      in
      let o1 = opt 1 and o2 = opt 2 and o_inf = opt (max 1 (D.n g2)) in
      o1 <= o2 && o2 <= o_inf)

let suite =
  [
    ( "bounded_closure",
      [
        Alcotest.test_case "k=1 is the edge relation" `Quick test_k1_is_edges;
        Alcotest.test_case "k=2" `Quick test_k2;
        Alcotest.test_case "k=0 empty" `Quick test_k0;
        Alcotest.test_case "large k = closure" `Quick test_large_k_is_tc;
        Alcotest.test_case "self loop" `Quick test_self_loop_counts_one_hop;
        Alcotest.test_case "distances_within" `Quick test_distances_within;
        Alcotest.test_case "hop-bounded matching semantics" `Quick
          test_bounded_matching;
        prop_monotone_in_k;
        prop_k_n_equals_tc;
        prop_matches_bfs_oracle;
        prop_optimum_monotone_in_k;
      ] );
  ]
