open Helpers

let test_basic () =
  let m = Simmat.create ~n1:2 ~n2:3 in
  Alcotest.(check int) "n1" 2 (Simmat.n1 m);
  Alcotest.(check int) "n2" 3 (Simmat.n2 m);
  Simmat.set m 1 2 0.5;
  Alcotest.(check (float 1e-9)) "get" 0.5 (Simmat.get m 1 2);
  Alcotest.(check (float 1e-9)) "default zero" 0.0 (Simmat.get m 0 0)

let test_validation () =
  let m = Simmat.create ~n1:2 ~n2:2 in
  Alcotest.check_raises "range" (Invalid_argument "Simmat.set: value outside [0,1]")
    (fun () -> Simmat.set m 0 0 1.5);
  Alcotest.check_raises "bounds" (Invalid_argument "Simmat: index out of bounds")
    (fun () -> ignore (Simmat.get m 2 0))

let test_of_fun_clamps () =
  let m = Simmat.of_fun ~n1:1 ~n2:2 (fun _ u -> if u = 0 then -3. else 7.) in
  Alcotest.(check (float 1e-9)) "clamped low" 0.0 (Simmat.get m 0 0);
  Alcotest.(check (float 1e-9)) "clamped high" 1.0 (Simmat.get m 0 1)

let test_label_equality () =
  let g1 = graph [ "a"; "b" ] [] and g2 = graph [ "b"; "a"; "c" ] [] in
  let m = Simmat.of_label_equality g1 g2 in
  Alcotest.(check (float 1e-9)) "a=a" 1.0 (Simmat.get m 0 1);
  Alcotest.(check (float 1e-9)) "a≠b" 0.0 (Simmat.get m 0 0)

let test_candidates_sorted () =
  let m = Simmat.create ~n1:1 ~n2:4 in
  Simmat.set m 0 0 0.6;
  Simmat.set m 0 1 0.9;
  Simmat.set m 0 2 0.9;
  Simmat.set m 0 3 0.3;
  let c = Simmat.candidates m ~xi:0.5 in
  Alcotest.(check (array int)) "sorted desc, ties ascending" [| 1; 2; 0 |] c.(0);
  Alcotest.(check int) "count" 3 (Simmat.candidate_count m ~xi:0.5);
  Alcotest.(check int) "count all" 4 (Simmat.candidate_count m ~xi:0.0)

let test_restrict () =
  let m = Simmat.of_fun ~n1:3 ~n2:3 (fun v u -> float_of_int ((v * 3) + u) /. 10.) in
  let r = Simmat.restrict m ~rows:[| 2; 0 |] ~cols:[| 1 |] in
  Alcotest.(check (float 1e-9)) "(2,1)" 0.7 (Simmat.get r 0 0);
  Alcotest.(check (float 1e-9)) "(0,1)" 0.1 (Simmat.get r 1 0)

let test_combinators () =
  let a = Simmat.of_fun ~n1:1 ~n2:2 (fun _ u -> if u = 0 then 0.2 else 0.8) in
  let b = Simmat.of_fun ~n1:1 ~n2:2 (fun _ u -> if u = 0 then 0.5 else 0.1) in
  let mx = Simmat.pointwise_max a b in
  Alcotest.(check (float 1e-9)) "max 0" 0.5 (Simmat.get mx 0 0);
  Alcotest.(check (float 1e-9)) "max 1" 0.8 (Simmat.get mx 0 1);
  let s = Simmat.scale 2.0 a in
  Alcotest.(check (float 1e-9)) "scale clamps" 1.0 (Simmat.get s 0 1);
  Alcotest.(check (float 1e-9)) "max_value" 1.0 (Simmat.max_value s)

let suite =
  [
    ( "simmat",
      [
        Alcotest.test_case "create/get/set" `Quick test_basic;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "of_fun clamps" `Quick test_of_fun_clamps;
        Alcotest.test_case "label equality" `Quick test_label_equality;
        Alcotest.test_case "candidates sorted by similarity" `Quick
          test_candidates_sorted;
        Alcotest.test_case "restrict" `Quick test_restrict;
        Alcotest.test_case "scale / pointwise max" `Quick test_combinators;
      ] );
  ]
