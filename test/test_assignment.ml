open! Helpers
module A = Phom_wis.Assignment

let test_simple () =
  (* classic 3×3 *)
  let cost = [| [| 4.; 1.; 3. |]; [| 2.; 0.; 5. |]; [| 3.; 2.; 2. |] |] in
  let assignment, total = A.minimize cost in
  Alcotest.(check (float 1e-9)) "optimal total" 5.0 total;
  Alcotest.(check (array int)) "assignment" [| 1; 0; 2 |] assignment

let test_rectangular () =
  (* 2 rows, 3 cols: best picks the cheapest distinct columns *)
  let cost = [| [| 10.; 1.; 7. |]; [| 1.; 10.; 7. |] |] in
  let assignment, total = A.minimize cost in
  Alcotest.(check (float 1e-9)) "total" 2.0 total;
  Alcotest.(check (array int)) "assignment" [| 1; 0 |] assignment

let test_empty () =
  let assignment, total = A.minimize [||] in
  Alcotest.(check int) "empty" 0 (Array.length assignment);
  Alcotest.(check (float 1e-9)) "zero" 0.0 total

let test_validation () =
  Alcotest.check_raises "rows > cols"
    (Invalid_argument "Assignment.minimize: more rows than columns") (fun () ->
      ignore (A.minimize [| [| 1. |]; [| 2. |] |]));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Assignment.minimize: ragged matrix") (fun () ->
      ignore (A.minimize [| [| 1.; 2. |]; [| 3. |] |]))

let test_maximize () =
  let profit = [| [| 1.; 9. |]; [| 8.; 2. |] |] in
  let assignment, total = A.maximize profit in
  Alcotest.(check (float 1e-9)) "max profit" 17.0 total;
  Alcotest.(check (array int)) "assignment" [| 1; 0 |] assignment

let gen_matrix : float array array QCheck.Gen.t =
 fun st ->
  let n = 1 + Random.State.int st 6 in
  let m = n + Random.State.int st 3 in
  Array.init n (fun _ -> Array.init m (fun _ -> float_of_int (Random.State.int st 20)))

let print_matrix cost =
  String.concat ";"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat ","
              (Array.to_list (Array.map (fun x -> Printf.sprintf "%.0f" x) row)))
          cost))

let brute_force cost =
  let n = Array.length cost and m = Array.length cost.(0) in
  let best = ref infinity in
  let used = Array.make m false in
  let rec go i acc =
    if i = n then best := Float.min !best acc
    else
      for j = 0 to m - 1 do
        if not used.(j) then begin
          used.(j) <- true;
          go (i + 1) (acc +. cost.(i).(j));
          used.(j) <- false
        end
      done
  in
  go 0 0.;
  !best

let prop_matches_brute_force =
  qtest ~count:100 "assignment: hungarian = brute force" gen_matrix print_matrix
    (fun cost ->
      let assignment, total = A.minimize cost in
      let distinct =
        List.length (List.sort_uniq compare (Array.to_list assignment))
        = Array.length assignment
      in
      distinct && abs_float (total -. brute_force cost) < 1e-6)

let suite =
  [
    ( "assignment",
      [
        Alcotest.test_case "3x3" `Quick test_simple;
        Alcotest.test_case "rectangular" `Quick test_rectangular;
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "maximize" `Quick test_maximize;
        prop_matches_brute_force;
      ] );
  ]
