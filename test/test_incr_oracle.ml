(* Differential oracle for the dynamic-graph subsystem: seeded random edit
   scripts (addedge/deledge over ER / DAG / series-parallel graphs) where
   every incrementally-maintained structure is checked byte-for-byte
   against a from-scratch rebuild after every single step —
   [Incremental.update] against [Bounded_closure.relation] for the
   closures, and the daemon's edit+re-solve path against a cold daemon
   that loaded the edited graph from disk for the solve/count replies.

   Metamorphic companions: an add-then-del round trip restores the content
   signature, the cached artifacts and the solve replies exactly; edits
   confined to one weak component never invalidate artifacts whose
   relevant components lie elsewhere; duplicate adds and missing dels are
   clean errors that change nothing. Plus the unload-race regression: a
   solve that pinned its snapshot before an unload/edit still computes
   correct results and cannot resurrect purged cache state. *)

module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module BC = Phom_graph.Bounded_closure
module Incr = Phom_graph.Incremental
module G = Phom_graph.Generators
module IO = Phom_graph.Graph_io
module Catalog = Phom_server.Catalog
module Protocol = Phom_server.Protocol
module Daemon = Phom_server.Daemon
module Pool = Phom_parallel.Pool

let labels i = Printf.sprintf "L%d" (i mod 4)

let gen_graph rng ~family ~n =
  match family with
  | 0 ->
      let m = Random.State.int rng (min (n * (n - 1)) (3 * n) + 1) in
      G.erdos_renyi ~rng ~n ~m ~labels
  | 1 ->
      let m = Random.State.int rng (min (n * (n - 1) / 2) (3 * n) + 1) in
      G.random_dag ~rng ~n ~m ~labels
  | _ -> G.series_parallel ~rng ~n ~labels

let edges_of g =
  let acc = ref [] in
  D.iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

(* a random applicable edit: delete an existing edge or add a missing one
   (self-loops included — the closure diagonal is where cycle semantics
   live, so edits must exercise it) *)
let random_edit rng g =
  let n = D.n g in
  let edges = edges_of g in
  let m = List.length edges in
  let pick_add () =
    let rec go tries =
      if tries > 300 then None
      else
        let u = Random.State.int rng n and v = Random.State.int rng n in
        if D.has_edge g u v then go (tries + 1) else Some (`Add, u, v)
    in
    go 0
  in
  let pick_del () =
    if m = 0 then None
    else
      let u, v = List.nth edges (Random.State.int rng m) in
      Some (`Del, u, v)
  in
  if m > 0 && Random.State.bool rng then pick_del ()
  else match pick_add () with Some e -> Some e | None -> pick_del ()

let apply op g u v =
  match op with `Add -> D.add_edge g u v | `Del -> D.remove_edge g u v

(* ---- the closure oracle ---- *)

let hops_variants = [ None; Some 1; Some 2; Some 3 ]

let hops_name = function None -> "full" | Some k -> string_of_int k

let closure_script seed =
  let rng = Random.State.make [| 0xC10; seed |] in
  let family = seed mod 3 in
  let n = 5 + Random.State.int rng 8 in
  let g = ref (gen_graph rng ~family ~n) in
  let closures =
    ref (List.map (fun h -> (h, BC.relation ?hops:h !g)) hops_variants)
  in
  let steps = 1 + Random.State.int rng 6 in
  for step = 1 to steps do
    match random_edit rng !g with
    | None -> ()
    | Some (op, u, v) ->
        let before = !g in
        let after = apply op before u v in
        closures :=
          List.map
            (fun (h, c) ->
              (h, Incr.update ~hops:h ~before ~after ~op ~u ~v c))
            !closures;
        g := after;
        List.iter
          (fun (h, c) ->
            if not (BM.equal c (BC.relation ?hops:h after)) then
              Alcotest.failf
                "seed %d step %d: incremental hops=%s closure diverges after \
                 %s %d->%d"
                seed step (hops_name h)
                (match op with `Add -> "add" | `Del -> "del")
                u v)
          !closures
  done

let test_closure_scripts lo hi () =
  for seed = lo to hi - 1 do
    closure_script seed
  done

(* ---- the daemon-level solve oracle ---- *)

let exec st line =
  match Protocol.parse line with
  | Error m -> Alcotest.failf "parse %S: %s" line m
  | Ok req -> fst (Daemon.execute st req)

let expect_ok line reply =
  if String.length reply < 2 || String.sub reply 0 2 <> "ok" then
    Alcotest.failf "%S: expected ok, got %S" line reply;
  reply

(* provenance legitimately differs between a warm daemon and a cold rebuild;
   everything before it (the answer) must not *)
let strip_cache reply =
  let marker = " cache=" in
  let n = String.length reply and m = String.length marker in
  let rec find i =
    if i + m > n then reply
    else if String.sub reply i m = marker then String.sub reply 0 i
    else find (i + 1)
  in
  find 0

let save_tmp g =
  let path = Filename.temp_file "phom_incr" ".phg" in
  IO.save path g;
  path

let rm path = try Sys.remove path with Sys_error _ -> ()

let solve_lines seed =
  let sim = if seed mod 2 = 0 then "--sim equality" else "--sim shingles" in
  let hops = if seed mod 3 = 0 then " --hops 2" else "" in
  let solves =
    List.map
      (fun p -> Printf.sprintf "solve %s p d %s --xi 0.5%s" p sim hops)
      [ "card"; "card11"; "sim"; "sim11" ]
  in
  solves @ [ Printf.sprintf "count p d %s --xi 0.5%s" sim hops ]

(* one script: a warm daemon absorbs edits in place (incremental closures,
   signature-keyed cache, warm-started solves) while the oracle rebuilds a
   cold daemon from the edited graph files; after every step all four
   problems and the count must answer byte-identically *)
let solve_script ?pool seed =
  let rng = Random.State.make [| 0x501E; seed |] in
  let family = seed mod 3 in
  let g1 = ref (gen_graph rng ~family:(seed mod 2) ~n:(4 + Random.State.int rng 3)) in
  let g2 = ref (gen_graph rng ~family ~n:(6 + Random.State.int rng 6)) in
  let p1 = save_tmp !g1 and p2 = save_tmp !g2 in
  let warm = Daemon.make_state ?pool Daemon.default_config in
  ignore (expect_ok "load p" (exec warm (Printf.sprintf "load graph p %s" p1)));
  ignore (expect_ok "load d" (exec warm (Printf.sprintf "load graph d %s" p2)));
  rm p1;
  rm p2;
  let check_against_cold step =
    let q1 = save_tmp !g1 and q2 = save_tmp !g2 in
    let cold = Daemon.make_state ?pool Daemon.default_config in
    ignore (expect_ok "load p" (exec cold (Printf.sprintf "load graph p %s" q1)));
    ignore (expect_ok "load d" (exec cold (Printf.sprintf "load graph d %s" q2)));
    List.iter
      (fun line ->
        let w = strip_cache (expect_ok line (exec warm line)) in
        let c = strip_cache (expect_ok line (exec cold line)) in
        if w <> c then
          Alcotest.failf
            "seed %d step %d %S: warm daemon answered %S but a cold rebuild \
             answered %S"
            seed step line w c)
      (solve_lines seed);
    Daemon.close_state cold;
    rm q1;
    rm q2
  in
  check_against_cold 0;
  let steps = 1 + Random.State.int rng 4 in
  for step = 1 to steps do
    (* mostly edit the data graph; sometimes the pattern *)
    let name, gref =
      if Random.State.int rng 4 = 0 then ("p", g1) else ("d", g2)
    in
    match random_edit rng !gref with
    | None -> ()
    | Some (op, u, v) ->
        gref := apply op !gref u v;
        let verb = match op with `Add -> "addedge" | `Del -> "deledge" in
        ignore
          (expect_ok verb
             (exec warm (Printf.sprintf "%s %s %d %d" verb name u v)));
        check_against_cold step
  done;
  Daemon.close_state warm

let test_solve_scripts lo hi () =
  for seed = lo to hi - 1 do
    solve_script seed
  done

let test_solve_scripts_pooled lo hi () =
  Pool.with_pool ~domains:2 (fun pool ->
      for seed = lo to hi - 1 do
        solve_script ~pool seed
      done)

(* ---- metamorphic: add-then-del is a perfect undo ---- *)

let fig1_pattern = Filename.concat "../data" "fig1_pattern.phg"
let fig1_store = Filename.concat "../data" "fig1_store.phg"

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_add_then_del_restores () =
  let st = Daemon.make_state Daemon.default_config in
  ignore
    (expect_ok "load" (exec st (Printf.sprintf "load graph p %s" fig1_pattern)));
  ignore
    (expect_ok "load" (exec st (Printf.sprintf "load graph d %s" fig1_store)));
  let line = "solve card p d --sim shingles --xi 0.5" in
  let before = strip_cache (expect_ok line (exec st line)) in
  (* warm the closure cache, then round-trip an edge *)
  let r1 = expect_ok "addedge" (exec st "addedge d 0 5") in
  Alcotest.(check bool) "add applied" true (contains r1 "applied=1");
  let r2 = expect_ok "deledge" (exec st "deledge d 0 5") in
  Alcotest.(check bool) "del applied" true (contains r2 "applied=1");
  (* the undo restored the content, so the original signature — and with
     it every cached artifact key — is live again: the solve must hit *)
  let restored = expect_ok line (exec st line) in
  Alcotest.(check string) "solve output restored exactly" before
    (strip_cache restored);
  Alcotest.(check bool) "candidate artifact resurrected (hit)" true
    (contains restored "cands:hit")

let test_undo_restores_signature () =
  let c = Catalog.create () in
  (match Catalog.load_graph c ~name:"d" ~path:fig1_store with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let sig0 =
    match Catalog.graph_sig c "d" with
    | Some s -> s
    | None -> Alcotest.fail "loaded graph has a signature"
  in
  let r =
    match Catalog.edit c ~name:"d" ~op:`Add ~v:1 ~w:0 with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "edit changes the signature" false (r.Catalog.crc = sig0);
  (match Catalog.edit c ~name:"d" ~op:`Del ~v:1 ~w:0 with
  | Ok r2 ->
      Alcotest.(check string) "undo restores the signature byte-for-byte" sig0
        r2.Catalog.crc
  | Error m -> Alcotest.fail m);
  (* and the CRC-idempotent form: re-sending the del with the restored
     signature acknowledges without applying *)
  match Catalog.edit ~expect_crc:sig0 c ~name:"d" ~op:`Del ~v:1 ~w:0 with
  | Ok r3 -> Alcotest.(check bool) "replayed edit is a no-op" false r3.Catalog.applied
  | Error m -> Alcotest.fail m

(* ---- metamorphic: cross-component isolation ---- *)

(* two weak components with disjoint label alphabets; the pattern can only
   land in component A, so edits inside component B must leave the
   candidate artifact warm (its pair signature only covers relevant
   components) and the answers untouched *)
let two_component_graph () =
  (* nodes 0-2: component A labelled a; nodes 3-6: component B labelled b *)
  D.make
    ~labels:(Array.init 7 (fun i -> if i < 3 then "a" else "b"))
    ~edges:[ (0, 1); (1, 2); (3, 4); (4, 5); (5, 6); (6, 3) ]

let one_node_pattern () = D.make ~labels:[| "a"; "a" |] ~edges:[ (0, 1) ]

let test_cross_component_isolation () =
  let gpath = save_tmp (two_component_graph ()) in
  let ppath = save_tmp (one_node_pattern ()) in
  let st = Daemon.make_state Daemon.default_config in
  ignore (expect_ok "load" (exec st (Printf.sprintf "load graph p %s" ppath)));
  ignore (expect_ok "load" (exec st (Printf.sprintf "load graph d %s" gpath)));
  rm gpath;
  rm ppath;
  let line = "solve card p d --xi 0.75" in
  let before = expect_ok line (exec st line) in
  (* edit strictly inside component B (labels "b": unmatchable at any ξ>0
     under label equality against an all-"a" pattern) *)
  ignore (expect_ok "deledge" (exec st "deledge d 6 3"));
  let after = expect_ok line (exec st line) in
  Alcotest.(check string) "answers agree" (strip_cache before)
    (strip_cache after);
  Alcotest.(check bool)
    "candidate artifact of the untouched components stays warm" true
    (contains after "cands:hit");
  (* a control: editing the relevant component must invalidate *)
  ignore (expect_ok "addedge" (exec st "addedge d 2 0"));
  let third = expect_ok line (exec st line) in
  Alcotest.(check bool) "relevant-component edit recomputes" true
    (contains third "cands:miss")

(* ---- metamorphic: invalid edits change nothing ---- *)

let test_invalid_edits_are_inert () =
  let st = Daemon.make_state Daemon.default_config in
  ignore
    (expect_ok "load" (exec st (Printf.sprintf "load graph d %s" fig1_store)));
  let c_before = exec st "list" in
  let sig_before = expect_ok "addedge" (exec st "addedge d 0 5") in
  (* duplicate add: a clean error *)
  let dup = exec st "addedge d 0 5" in
  Alcotest.(check bool) "duplicate add is an error" true
    (String.length dup >= 5 && String.sub dup 0 5 = "error");
  Alcotest.(check bool) "names the edge" true (contains dup "0->5");
  (* missing del: a clean error *)
  let missing = exec st "deledge d 5 0" in
  Alcotest.(check bool) "missing del is an error" true
    (String.length missing >= 5 && String.sub missing 0 5 = "error");
  (* out-of-range endpoint: a clean error *)
  let oob = exec st "addedge d 0 99" in
  Alcotest.(check bool) "out-of-range is an error" true
    (String.length oob >= 5 && String.sub oob 0 5 = "error");
  Alcotest.(check bool) "mentions the range" true (contains oob "out of range");
  (* a matrix is not editable *)
  ignore c_before;
  (* none of the failures changed the state: re-sending the successful
     edit's signature acknowledges it as still current *)
  let crc =
    let marker = " crc=" in
    let n = String.length sig_before in
    let rec find i =
      if i + 5 > n then Alcotest.fail "edit reply carries crc="
      else if String.sub sig_before i 5 = marker then
        let stop = ref (i + 5) in
        let () =
          while !stop < n && sig_before.[!stop] <> ' ' do
            incr stop
          done
        in
        String.sub sig_before (i + 5) (!stop - i - 5)
      else find (i + 1)
    in
    find 0
  in
  let noop = expect_ok "crc replay" (exec st ("addedge d 0 5 --crc " ^ crc)) in
  Alcotest.(check bool) "state unchanged by failed edits" true
    (contains noop "applied=0")

let test_edit_unknown_and_mat () =
  let st = Daemon.make_state Daemon.default_config in
  let unknown = exec st "addedge nope 0 1" in
  Alcotest.(check bool) "unknown graph is an error" true
    (String.length unknown >= 5 && String.sub unknown 0 5 = "error");
  ignore
    (expect_ok "load" (exec st (Printf.sprintf "load graph d %s" fig1_store)));
  let m = Filename.concat "../data" "fig1_mate.phs" in
  ignore (expect_ok "load" (exec st (Printf.sprintf "load mat mm %s" m)));
  let matedit = exec st "addedge mm 0 1" in
  Alcotest.(check bool) "editing a matrix is an error" true
    (contains matedit "similarity matrix")

(* ---- the unload/edit race regression ----

   A solve pins its snapshot at prepare; an unload (or edit) that lands
   before the job runs must neither crash the job, nor let it read the
   replacement state, nor let it resurrect cache entries for the purged
   name. *)

let test_unload_race_pinned_solve () =
  let c = Catalog.create () in
  (match Catalog.load_graph c ~name:"d" ~path:fig1_store with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let pin = match Catalog.pin c "d" with Ok p -> p | Error m -> Alcotest.fail m in
  (* the catalog entry vanishes while the "job" still holds the pin *)
  (match Catalog.unload c "d" with Ok _ -> () | Error m -> Alcotest.fail m);
  let m1, prov = Catalog.closure_pinned c ~pin ~hops:None in
  Alcotest.(check bool) "computes from the snapshot" true
    (prov = Catalog.Miss);
  Alcotest.(check bool) "correct closure" true
    (BM.equal m1 (BC.relation pin.Catalog.pin_graph));
  (* the generation barrier refused the insertion: nothing of the purged
     graph is resurrected in the cache *)
  Alcotest.(check int) "no resurrection" 0 (Catalog.cache_stats c).Phom_server.Lru.entries;
  (* reload different content under the same name: the old pin's keys are
     signature-distinct, so the stale snapshot cannot poison the new one *)
  (match Catalog.load_graph c ~name:"d" ~path:fig1_pattern with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let pin2 = match Catalog.pin c "d" with Ok p -> p | Error m -> Alcotest.fail m in
  Alcotest.(check bool) "replacement has its own signature" false
    (pin.Catalog.pin_sig = pin2.Catalog.pin_sig);
  let _, prov2 = Catalog.closure_pinned c ~pin:pin2 ~hops:None in
  Alcotest.(check bool) "new content computes fresh" true (prov2 = Catalog.Miss)

let test_edit_race_pinned_solve () =
  let c = Catalog.create () in
  (match Catalog.load_graph c ~name:"d" ~path:fig1_store with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let pin = match Catalog.pin c "d" with Ok p -> p | Error m -> Alcotest.fail m in
  (* an edit lands between prepare and job *)
  (match Catalog.edit c ~name:"d" ~op:`Add ~v:0 ~w:5 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (* the pinned job still answers for the graph it was asked about (the
     pre-edit snapshot), not the mutated one *)
  let m1, _ = Catalog.closure_pinned c ~pin ~hops:None in
  Alcotest.(check bool) "pre-edit closure" true
    (BM.equal m1 (BC.relation pin.Catalog.pin_graph));
  (* and its cache entry went in under the pre-edit signature, so a fresh
     pin of the edited graph misses instead of reading the stale matrix *)
  let pin2 = match Catalog.pin c "d" with Ok p -> p | Error m -> Alcotest.fail m in
  let m2, prov2 = Catalog.closure_pinned c ~pin:pin2 ~hops:None in
  Alcotest.(check bool) "post-edit pin recomputes" true (prov2 = Catalog.Miss);
  Alcotest.(check bool) "post-edit closure is the edited graph's" true
    (BM.equal m2 (BC.relation pin2.Catalog.pin_graph))

let chunk name lo hi f =
  Alcotest.test_case (Printf.sprintf "%s %d..%d" name lo (hi - 1)) `Slow (f lo hi)

let oracle_tests =
  [
    chunk "closure scripts" 0 60 test_closure_scripts;
    chunk "closure scripts" 60 120 test_closure_scripts;
    chunk "closure scripts" 120 180 test_closure_scripts;
    chunk "closure scripts" 180 240 test_closure_scripts;
    chunk "edit+re-solve vs cold rebuild" 0 20 test_solve_scripts;
    chunk "edit+re-solve vs cold rebuild" 20 40 test_solve_scripts;
    chunk "edit+re-solve vs cold rebuild (pooled)" 40 60
      test_solve_scripts_pooled;
  ]

let metamorphic_tests =
  [
    Alcotest.test_case "add-then-del restores solve output and cache" `Quick
      test_add_then_del_restores;
    Alcotest.test_case "add-then-del restores the content signature" `Quick
      test_undo_restores_signature;
    Alcotest.test_case "edits isolate across weak components" `Quick
      test_cross_component_isolation;
    Alcotest.test_case "duplicate add / missing del are inert errors" `Quick
      test_invalid_edits_are_inert;
    Alcotest.test_case "unknown names and matrices are not editable" `Quick
      test_edit_unknown_and_mat;
    Alcotest.test_case "unload cannot corrupt a pinned in-flight solve" `Quick
      test_unload_race_pinned_solve;
    Alcotest.test_case "edit cannot corrupt a pinned in-flight solve" `Quick
      test_edit_race_pinned_solve;
  ]

let suite =
  [ ("incr_oracle", oracle_tests); ("incr_metamorphic", metamorphic_tests) ]
