open Helpers
module Sh = Phom_sim.Shingle

let test_tokenize () =
  Alcotest.(check (list string)) "splits and lowercases"
    [ "hello"; "world"; "42" ]
    (Sh.tokenize "Hello, WORLD!  42.");
  Alcotest.(check (list string)) "empty" [] (Sh.tokenize " ,;! ")

let test_identical () =
  Alcotest.(check (float 1e-9)) "identical docs" 1.0
    (Sh.similarity "the quick brown fox jumps over the lazy dog"
       "the quick brown fox jumps over the lazy dog")

let test_disjoint () =
  Alcotest.(check (float 1e-9)) "disjoint docs" 0.0
    (Sh.similarity "aa bb cc dd ee" "ff gg hh ii jj")

let test_empty_docs () =
  Alcotest.(check (float 1e-9)) "both empty" 1.0 (Sh.similarity "" "");
  Alcotest.(check (float 1e-9)) "one empty" 0.0 (Sh.similarity "" "a b c d e")

let test_short_doc () =
  (* fewer than w tokens: one shingle over everything *)
  Alcotest.(check int) "one shingle" 1 (Array.length (Sh.shingles ~w:4 "a b"));
  Alcotest.(check (float 1e-9)) "short equal" 1.0 (Sh.similarity "a b" "a b")

let test_window_sensitivity () =
  (* token order matters *)
  let a = "a b c d e f" and b = "f e d c b a" in
  Alcotest.(check bool) "reordered less similar" true (Sh.similarity a b < 1.0)

let test_separator_injection () =
  (* ["ab"; "c"] must not hash like ["a"; "bc"] *)
  let s1 = Sh.shingles ~w:2 "ab c" and s2 = Sh.shingles ~w:2 "a bc" in
  Alcotest.(check bool) "distinct" false (s1 = s2)

let test_matrix () =
  let m = Sh.matrix [| "a b c d"; "x y z w" |] [| "a b c d" |] in
  Alcotest.(check (float 1e-9)) "same" 1.0 (Simmat.get m 0 0);
  Alcotest.(check (float 1e-9)) "diff" 0.0 (Simmat.get m 1 0)

let test_sketch () =
  let s = Sh.shingles (String.concat " " (List.init 300 string_of_int)) in
  let k = 32 in
  let sk = Sh.sketch ~k s in
  Alcotest.(check int) "sketch size" k (Array.length sk);
  Alcotest.(check (float 1e-9)) "self sketch jaccard" 1.0 (Sh.sketch_jaccard sk sk)

let gen_doc : string QCheck.Gen.t =
 fun st ->
  String.concat " "
    (List.init
       (Random.State.int st 30)
       (fun _ -> Printf.sprintf "w%d" (Random.State.int st 12)))

let prop_jaccard_bounds =
  qtest "shingle: similarity in [0,1] and symmetric"
    (QCheck.Gen.pair gen_doc gen_doc)
    (fun (a, b) -> Printf.sprintf "%S vs %S" a b)
    (fun (a, b) ->
      let s = Sh.similarity a b in
      s >= 0. && s <= 1. && abs_float (s -. Sh.similarity b a) < 1e-12)

let prop_self_similarity =
  qtest "shingle: self similarity = 1" gen_doc
    (fun d -> d)
    (fun d -> Sh.similarity d d = 1.0)

let suite =
  [
    ( "shingle",
      [
        Alcotest.test_case "tokenize" `Quick test_tokenize;
        Alcotest.test_case "identical docs" `Quick test_identical;
        Alcotest.test_case "disjoint docs" `Quick test_disjoint;
        Alcotest.test_case "empty docs" `Quick test_empty_docs;
        Alcotest.test_case "short docs" `Quick test_short_doc;
        Alcotest.test_case "order sensitivity" `Quick test_window_sensitivity;
        Alcotest.test_case "token separator" `Quick test_separator_injection;
        Alcotest.test_case "similarity matrix" `Quick test_matrix;
        Alcotest.test_case "min-hash sketch" `Quick test_sketch;
        prop_jaccard_bounds;
        prop_self_similarity;
      ] );
  ]
