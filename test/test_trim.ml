open Helpers
module ML = Phom.Matching_list
module Trim = Phom.Trim

let setup g1 g2 =
  let t = eq_instance g1 g2 in
  (t, ML.of_candidates (Instance.candidates t))

let test_prunes_children () =
  (* pattern a→b; data: a, unreachable b, reachable b *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b"; "b" ] [ (0, 2) ] in
  let t, h = setup g1 g2 in
  let h = Trim.trim ~g1:t.Instance.g1 ~tc2:t.Instance.tc2 ~v:0 ~u:0 h in
  Alcotest.(check (list int)) "child keeps reachable b" [ 2 ]
    (ML.Int_set.elements (ML.good h 1));
  Alcotest.(check (list int)) "pruned b in minus" [ 1 ]
    (ML.Int_set.elements (ML.minus h 1))

let test_prunes_parents () =
  (* pattern a→b, trimming on b's choice prunes a's candidates *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "a"; "b" ] [ (1, 2) ] in
  let t, h = setup g1 g2 in
  let h = Trim.trim ~g1:t.Instance.g1 ~tc2:t.Instance.tc2 ~v:1 ~u:2 h in
  Alcotest.(check (list int)) "parent keeps the a that reaches" [ 1 ]
    (ML.Int_set.elements (ML.good h 0))

let test_untouched_nodes () =
  (* a node not adjacent to v keeps its candidates *)
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  let t, h = setup g1 g2 in
  let h' = Trim.trim ~g1:t.Instance.g1 ~tc2:t.Instance.tc2 ~v:0 ~u:0 h in
  Alcotest.(check (list int)) "c untouched" [ 2 ] (ML.Int_set.elements (ML.good h' 2))

let prop_trim_sound_and_complete =
  (* after trim(v,u): u' survives in a neighbour's good iff it is
     path-consistent with (v,u) *)
  qtest ~count:100 "trim: keeps exactly the consistent candidates"
    (instance_gen ()) print_instance (fun t ->
      let h = ML.of_candidates (Instance.candidates t) in
      let n1 = D.n t.g1 in
      if n1 = 0 then true
      else begin
        let ok = ref true in
        for v = 0 to n1 - 1 do
          ML.Int_set.iter
            (fun u ->
              let h' = Trim.trim ~g1:t.g1 ~tc2:t.tc2 ~v ~u h in
              let check_neighbour forward v' =
                if v' <> v then
                  ML.Int_set.iter
                    (fun u' ->
                      let consistent =
                        if forward then BM.get t.tc2 u u' else BM.get t.tc2 u' u
                      in
                      let survives = ML.Int_set.mem u' (ML.good h' v') in
                      (* a candidate may be pruned by the other direction
                         too, so check the exact rule for double edges *)
                      let other_dir =
                        if forward then
                          (not (D.has_edge t.g1 v' v)) || BM.get t.tc2 u' u
                        else (not (D.has_edge t.g1 v v')) || BM.get t.tc2 u u'
                      in
                      if survives <> (consistent && other_dir) then ok := false)
                    (ML.good h v')
              in
              Array.iter (check_neighbour true) (D.succ t.g1 v);
              Array.iter (check_neighbour false) (D.pred t.g1 v))
            (ML.good h v)
        done;
        !ok
      end)

let suite =
  [
    ( "trim",
      [
        Alcotest.test_case "prunes children" `Quick test_prunes_children;
        Alcotest.test_case "prunes parents" `Quick test_prunes_parents;
        Alcotest.test_case "leaves non-neighbours alone" `Quick test_untouched_nodes;
        prop_trim_sound_and_complete;
      ] );
  ]
