open Helpers
module Mcs = Phom_baselines.Mcs

let test_identical_graphs () =
  let g = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  match Mcs.run g g with
  | Mcs.Timed_out _ -> Alcotest.fail "should complete"
  | Mcs.Completed m ->
      Alcotest.(check int) "full common subgraph" 3 (Mapping.size m);
      Alcotest.(check bool) "valid" true (Mcs.is_common_subgraph g g m);
      Alcotest.(check (float 1e-9)) "quality" 1.0 (Mcs.quality g m)

let test_partial_overlap () =
  (* chain vs chain with one different label: MCS of size 2 *)
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let g2 = graph [ "a"; "b"; "z" ] [ (0, 1); (1, 2) ] in
  match Mcs.run g1 g2 with
  | Mcs.Timed_out _ -> Alcotest.fail "should complete"
  | Mcs.Completed m ->
      Alcotest.(check int) "two common nodes" 2 (Mapping.size m);
      Alcotest.(check bool) "valid" true (Mcs.is_common_subgraph g1 g2 m)

let test_induced_semantics () =
  (* induced: an edge present on one side but absent on the other blocks
     the pair combination *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b" ] [] in
  match Mcs.run g1 g2 with
  | Mcs.Timed_out _ -> Alcotest.fail "should complete"
  | Mcs.Completed m -> Alcotest.(check int) "only one node" 1 (Mapping.size m)

let test_timeout () =
  (* large unlabelled graphs: budget exhausts *)
  let rng = Random.State.make [| 9 |] in
  let g1 = Phom_graph.Generators.erdos_renyi ~rng ~n:30 ~m:90 ~labels:(fun _ -> "x") in
  let g2 = Phom_graph.Generators.erdos_renyi ~rng ~n:30 ~m:90 ~labels:(fun _ -> "x") in
  match Mcs.run ~budget:(Phom_graph.Budget.trip_after 100) g1 g2 with
  | Mcs.Timed_out _ -> ()
  | Mcs.Completed _ -> Alcotest.fail "expected timeout"

let test_custom_compat () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "b" ] [] in
  match Mcs.run ~node_compat:(fun _ _ -> true) g1 g2 with
  | Mcs.Completed m -> Alcotest.(check int) "compat overridden" 1 (Mapping.size m)
  | Mcs.Timed_out _ -> Alcotest.fail "should complete"

let prop_valid_and_mcs_is_cph11_special_case =
  qtest ~count:80 "mcs: results are common subgraphs and 1-1 p-hom mappings"
    (QCheck.Gen.pair (digraph_gen ~max_n:4 ()) (digraph_gen ~max_n:4 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      match Mcs.run g1 g2 with
      | Mcs.Timed_out _ -> true
      | Mcs.Completed m ->
          Mcs.is_common_subgraph g1 g2 m
          (* Section 3.3: MCS is a special case of CPH¹⁻¹, so any common
             subgraph is in particular a valid 1-1 p-hom mapping *)
          && Instance.is_valid ~injective:true (eq_instance ~xi:1.0 g1 g2) m)

let prop_mcs_leq_cph11 =
  qtest ~count:60 "mcs: |MCS| ≤ CPH¹⁻¹ optimum"
    (QCheck.Gen.pair (digraph_gen ~max_n:4 ()) (digraph_gen ~max_n:4 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      match Mcs.run g1 g2 with
      | Mcs.Timed_out _ -> true
      | Mcs.Completed m ->
          let t = eq_instance ~xi:1.0 g1 g2 in
          let e = Phom.Exact.solve ~injective:true ~objective:Phom.Exact.Cardinality t in
          (e.Phom.Exact.status <> Phom_graph.Budget.Complete)
          || Mapping.size m <= Mapping.size e.Phom.Exact.mapping)

let suite =
  [
    ( "mcs",
      [
        Alcotest.test_case "identical graphs" `Quick test_identical_graphs;
        Alcotest.test_case "partial overlap" `Quick test_partial_overlap;
        Alcotest.test_case "induced semantics" `Quick test_induced_semantics;
        Alcotest.test_case "timeout" `Quick test_timeout;
        Alcotest.test_case "custom compatibility" `Quick test_custom_compat;
        prop_valid_and_mcs_is_cph11_special_case;
        prop_mcs_leq_cph11;
      ] );
  ]
