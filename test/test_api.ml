open Helpers
module Api = Phom.Api

let simple () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  eq_instance g1 g2

let test_problem_metadata () =
  Alcotest.(check string) "CPH" "CPH" (Api.problem_name Api.CPH);
  Alcotest.(check string) "SPH1-1" "SPH1-1" (Api.problem_name Api.SPH11);
  Alcotest.(check bool) "CPH not injective" false (Api.injective Api.CPH);
  Alcotest.(check bool) "CPH11 injective" true (Api.injective Api.CPH11)

let test_solve_all_problems () =
  let t = simple () in
  List.iter
    (fun p ->
      let r = Api.solve p t in
      Alcotest.(check bool)
        (Api.problem_name p ^ " full quality")
        true
        (r.Api.quality >= 1.0 -. 1e-9);
      Alcotest.(check bool) "matches at 0.75" true (Api.matches r))
    [ Api.CPH; Api.CPH11; Api.SPH; Api.SPH11 ]

let test_matches_threshold () =
  let t = simple () in
  let r = Api.solve Api.CPH t in
  Alcotest.(check bool) "custom threshold" true (Api.matches ~threshold:1.0 r)

let test_algorithms_agree_on_simple () =
  let t = simple () in
  List.iter
    (fun algo ->
      let r = Api.solve ~algorithm:algo Api.CPH t in
      Alcotest.(check (float 1e-9)) "quality 1" 1.0 r.Api.quality)
    [ Api.Direct; Api.Naive_product; Api.Exact_bb ]

let prop_all_configurations_valid =
  qtest ~count:100 "api: every problem/algorithm/flag combination is valid"
    (instance_gen ~max_n1:4 ~max_n2:5 ()) print_instance (fun t ->
      List.for_all
        (fun p ->
          List.for_all
            (fun algo ->
              List.for_all
                (fun (partition, compress) ->
                  let r = Api.solve ~algorithm:algo ~partition ~compress p t in
                  Instance.is_valid ~injective:(Api.injective p) t r.Api.mapping)
                [ (false, false); (true, false); (false, true); (true, true) ])
            [ Api.Direct; Api.Naive_product; Api.Exact_bb ])
        [ Api.CPH; Api.CPH11; Api.SPH; Api.SPH11 ])

let prop_quality_matches_metric =
  qtest ~count:100 "api: reported quality equals the recomputed metric"
    (instance_gen ()) print_instance (fun t ->
      let r = Api.solve Api.CPH t in
      let r' = Api.solve Api.SPH t in
      abs_float (r.Api.quality -. Instance.qual_card t r.Api.mapping) < 1e-9
      && abs_float
           (r'.Api.quality
           -. Instance.qual_sim ~weights:(Array.make (D.n t.g1) 1.) t r'.Api.mapping)
         < 1e-9)

let suite =
  [
    ( "api",
      [
        Alcotest.test_case "problem metadata" `Quick test_problem_metadata;
        Alcotest.test_case "solve all four problems" `Quick test_solve_all_problems;
        Alcotest.test_case "match thresholds" `Quick test_matches_threshold;
        Alcotest.test_case "algorithms agree on easy input" `Quick
          test_algorithms_agree_on_simple;
        prop_all_configurations_valid;
        prop_quality_matches_metric;
      ] );
  ]
