open Helpers
module Site_gen = Phom_web.Site_gen
module Skeleton = Phom_web.Skeleton
module Matcher = Phom_web.Matcher
module Dataset = Phom_web.Dataset
module Page = Phom_web.Page

let rng seed = Random.State.make [| seed |]

let small_params =
  {
    Site_gen.pages = 120;
    hub_fraction = 0.02;
    max_degree_fraction = 0.06;
    hub_affinity = 0.3;
    edges = 260;
    templates = 4;
    vocab_size = 300;
    page_length = 40;
    edit_rate = 0.02;
    rewire_rate = 0.01;
    page_churn = 0.005;
    vocab_prefix = "t";
  }

let test_page_generation () =
  let vocab = Page.vocabulary ~prefix:"x" 50 in
  Alcotest.(check int) "vocab size" 50 (Array.length vocab);
  let doc = Page.generate ~rng:(rng 1) ~vocab ~length:30 in
  Alcotest.(check int) "token count" 30
    (List.length (String.split_on_char ' ' doc));
  let doc' = Page.mutate ~rng:(rng 2) ~vocab ~edit_rate:0.0 doc in
  Alcotest.(check string) "zero edit keeps doc" doc doc';
  let doc'' = Page.mutate ~rng:(rng 2) ~vocab ~edit_rate:1.0 doc in
  Alcotest.(check bool) "full edit changes doc" true (doc <> doc'')

let test_site_generation () =
  let s = Site_gen.generate ~rng:(rng 3) small_params in
  Alcotest.(check int) "pages" 120 (D.n s.Site_gen.graph);
  Alcotest.(check int) "contents" 120 (Array.length s.Site_gen.contents);
  Alcotest.(check bool) "edge count near target" true
    (abs (D.nb_edges s.Site_gen.graph - 260) < 30);
  (* tree backbone: everything reachable from the root *)
  Alcotest.(check int) "reachable from root" 120
    (Bitset.count (Phom_graph.Traversal.reachable s.Site_gen.graph 0))

let test_archive_similarity_ordering () =
  (* consecutive versions are more similar than distant ones *)
  let snapshots = Site_gen.archive ~rng:(rng 4) small_params ~versions:6 in
  let first = List.nth snapshots 0 in
  let second = List.nth snapshots 1 in
  let last = List.nth snapshots 5 in
  let avg_sim a b =
    let total = ref 0. in
    for i = 0 to D.n a.Site_gen.graph - 1 do
      total :=
        !total
        +. Phom_sim.Shingle.similarity a.Site_gen.contents.(i)
             b.Site_gen.contents.(i)
    done;
    !total /. float_of_int (D.n a.Site_gen.graph)
  in
  Alcotest.(check bool) "drift accumulates" true
    (avg_sim first second >= avg_sim first last)

let test_skeleton_by_degree () =
  let s = Site_gen.generate ~rng:(rng 5) small_params in
  let sk = Skeleton.by_degree ~alpha:0.2 s in
  let g = s.Site_gen.graph in
  let threshold = D.avg_degree g +. (0.2 *. float_of_int (D.max_degree g)) in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "above threshold" true
        (float_of_int (D.degree g v) >= threshold))
    sk.Skeleton.nodes;
  Alcotest.(check int) "contents restricted" (D.n sk.Skeleton.graph)
    (Array.length sk.Skeleton.contents)

let test_skeleton_top_k () =
  let s = Site_gen.generate ~rng:(rng 6) small_params in
  let sk = Skeleton.top_k s 10 in
  Alcotest.(check int) "k nodes" 10 (D.n sk.Skeleton.graph);
  (* every kept node has degree ≥ every dropped node *)
  let kept = Array.to_list sk.Skeleton.nodes in
  let g = s.Site_gen.graph in
  let min_kept =
    List.fold_left (fun acc v -> min acc (D.degree g v)) max_int kept
  in
  for v = 0 to D.n g - 1 do
    if not (List.mem v kept) then
      Alcotest.(check bool) "dominates dropped" true (D.degree g v <= min_kept)
  done

let test_matcher_identity () =
  (* a site matches itself under every complete method *)
  let s = Site_gen.generate ~rng:(rng 7) small_params in
  let sk = Skeleton.top_k s 12 in
  List.iter
    (fun m ->
      let v = Matcher.match_skeletons m sk sk in
      match v.Matcher.matched with
      | Some ok ->
          Alcotest.(check bool) (Matcher.method_name m ^ " self-match") true ok
      | None -> ())
    Matcher.all_methods

let test_matcher_disjoint () =
  (* two unrelated sites (different vocabularies) never match *)
  let a = Site_gen.generate ~rng:(rng 8) small_params in
  let b =
    Site_gen.generate ~rng:(rng 9) { small_params with vocab_prefix = "zzz" }
  in
  let ska = Skeleton.top_k a 10 and skb = Skeleton.top_k b 10 in
  List.iter
    (fun m ->
      let v = Matcher.match_skeletons m ska skb in
      match v.Matcher.matched with
      | Some ok ->
          Alcotest.(check bool) (Matcher.method_name m ^ " no false match") false ok
      | None -> ())
    [ Matcher.CompMaxCard; Matcher.CompMaxSim; Matcher.SF; Matcher.GraphSimulation ]

let test_accuracy_all_or_nothing () =
  let s = Site_gen.generate ~rng:(rng 10) small_params in
  let sk = Skeleton.top_k s 10 in
  let acc, _ =
    Matcher.accuracy Matcher.CompMaxCard ~pattern:sk ~versions:[ sk; sk ]
  in
  Alcotest.(check (option (float 1e-9))) "100%" (Some 100.) acc

let test_evolve_invariants () =
  let rng = rng 13 in
  let site = Site_gen.generate ~rng small_params in
  let next = Site_gen.evolve ~rng small_params site in
  Alcotest.(check int) "page count stable" (D.n site.Site_gen.graph)
    (D.n next.Site_gen.graph);
  Alcotest.(check int) "edge count stable"
    (D.nb_edges site.Site_gen.graph)
    (D.nb_edges next.Site_gen.graph);
  (* with these gentle rates most pages are untouched verbatim *)
  let same = ref 0 in
  Array.iteri
    (fun i doc -> if String.equal doc next.Site_gen.contents.(i) then incr same)
    site.Site_gen.contents;
  Alcotest.(check bool) "most pages untouched" true
    (!same > D.n site.Site_gen.graph * 8 / 10)

let test_template_near_duplicates () =
  (* pages sharing a template sit above the 0.75 threshold; this is the
     property that makes exact-MCS searches blow up on real sites *)
  let rng = rng 14 in
  let site =
    Site_gen.generate ~rng { small_params with pages = 40; templates = 1 }
  in
  let sims = ref [] in
  for i = 0 to 9 do
    for j = i + 1 to 9 do
      sims :=
        Phom_sim.Shingle.similarity site.Site_gen.contents.(i)
          site.Site_gen.contents.(j)
        :: !sims
    done
  done;
  let avg = List.fold_left ( +. ) 0. !sims /. float_of_int (List.length !sims) in
  Alcotest.(check bool) "near-duplicates" true (avg >= 0.7)

let test_skeleton_edge_cases () =
  (* empty site *)
  let empty = { Site_gen.graph = D.empty; contents = [||] } in
  Alcotest.(check int) "empty skeleton" 0
    (D.n (Skeleton.by_degree empty).Skeleton.graph);
  Alcotest.(check int) "empty top-k" 0 (D.n (Skeleton.top_k empty 5).Skeleton.graph);
  (* single page: the fallback keeps it *)
  let one = { Site_gen.graph = graph [ "p" ] []; contents = [| "doc" |] } in
  Alcotest.(check int) "singleton skeleton" 1
    (D.n (Skeleton.by_degree one).Skeleton.graph);
  (* top-k larger than the site *)
  Alcotest.(check int) "k capped" 1 (D.n (Skeleton.top_k one 99).Skeleton.graph)

let test_matcher_thresholds () =
  (* xi=1.0 restricts candidates to exact-content pages; a site still
     matches itself, and a stricter quality threshold can flip the verdict *)
  let s = Site_gen.generate ~rng:(rng 15) small_params in
  let sk = Skeleton.top_k s 8 in
  let strict = Matcher.match_skeletons ~xi:1.0 Matcher.CompMaxCard sk sk in
  Alcotest.(check (option bool)) "self match at xi=1" (Some true)
    strict.Matcher.matched;
  let impossible =
    Matcher.match_skeletons ~threshold:1.01 Matcher.CompMaxCard sk sk
  in
  Alcotest.(check (option bool)) "unreachable threshold" (Some false)
    impossible.Matcher.matched

let test_dataset_rows () =
  let rng = rng 11 in
  List.iter
    (fun spec ->
      let row = Dataset.table2_row ~rng spec in
      Alcotest.(check bool)
        (spec.Dataset.name ^ " row sane")
        true
        (row.Dataset.nodes > 0
        && row.Dataset.edges > 0
        && row.Dataset.skel1_nodes > 0
        && row.Dataset.skel2_nodes <= 20))
    (Dataset.sites (Dataset.Reduced 50))

let test_dataset_archive () =
  let rng = rng 12 in
  let spec = List.hd (Dataset.sites (Dataset.Reduced 50)) in
  let pattern, versions =
    Dataset.archive_skeletons ~rng ~versions:4 ~skeleton:(`Top 8) spec
  in
  Alcotest.(check int) "3 later versions" 3 (List.length versions);
  Alcotest.(check int) "pattern has 8 nodes" 8 (D.n pattern.Phom_web.Skeleton.graph)

let suite =
  [
    ( "web",
      [
        Alcotest.test_case "page generation and mutation" `Quick test_page_generation;
        Alcotest.test_case "site generation" `Quick test_site_generation;
        Alcotest.test_case "archive drift ordering" `Quick
          test_archive_similarity_ordering;
        Alcotest.test_case "degree skeleton" `Quick test_skeleton_by_degree;
        Alcotest.test_case "top-k skeleton" `Quick test_skeleton_top_k;
        Alcotest.test_case "matcher: self match" `Quick test_matcher_identity;
        Alcotest.test_case "matcher: unrelated sites" `Quick test_matcher_disjoint;
        Alcotest.test_case "accuracy aggregation" `Quick test_accuracy_all_or_nothing;
        Alcotest.test_case "evolve invariants" `Quick test_evolve_invariants;
        Alcotest.test_case "template near-duplicates" `Quick
          test_template_near_duplicates;
        Alcotest.test_case "skeleton edge cases" `Quick test_skeleton_edge_cases;
        Alcotest.test_case "matcher thresholds" `Quick test_matcher_thresholds;
        Alcotest.test_case "table 2 rows" `Quick test_dataset_rows;
        Alcotest.test_case "archive skeletons" `Quick test_dataset_archive;
      ] );
  ]
