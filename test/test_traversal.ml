open Helpers
module T = Phom_graph.Traversal

let chain () = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (1, 2); (2, 3) ]

let cycle () = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ]

let test_bfs_dfs () =
  let g = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check (list int)) "bfs" [ 0; 1; 2; 3 ] (T.bfs_order g 0);
  Alcotest.(check (list int)) "dfs" [ 0; 1; 3; 2 ] (T.dfs_order g 0);
  Alcotest.(check (list int)) "from sink" [ 3 ] (T.bfs_order g 3)

let test_reachable () =
  let g = chain () in
  Alcotest.(check (list int)) "incl self" [ 1; 2; 3 ]
    (Bitset.to_list (T.reachable g 1));
  Alcotest.(check (list int)) "nonempty excl self" [ 2; 3 ]
    (Bitset.to_list (T.reachable_nonempty g 1))

let test_reachable_nonempty_cycle () =
  let g = cycle () in
  Alcotest.(check (list int)) "cycle reaches itself" [ 0; 1; 2 ]
    (Bitset.to_list (T.reachable_nonempty g 0))

let test_self_loop () =
  let g = graph [ "a" ] [ (0, 0) ] in
  Alcotest.(check (list int)) "self loop" [ 0 ]
    (Bitset.to_list (T.reachable_nonempty g 0))

let test_distances () =
  let g = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (1, 2) ] in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; -1 |] (T.distances g 0)

let test_topo () =
  let g = chain () in
  Alcotest.(check (option (list int))) "chain topo" (Some [ 0; 1; 2; 3 ])
    (T.topological_order g);
  Alcotest.(check bool) "chain is dag" true (T.is_dag g);
  Alcotest.(check bool) "cycle is not" false (T.is_dag (cycle ()))

let test_shortest_path () =
  let g = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  Alcotest.(check (option (list int))) "direct" (Some [ 0; 3 ])
    (T.shortest_path g 0 3);
  Alcotest.(check (option (list int))) "two hops" (Some [ 0; 1; 2 ])
    (T.shortest_path g 0 2);
  Alcotest.(check (option (list int))) "unreachable" None (T.shortest_path g 3 0);
  (* same endpoints need a genuine cycle *)
  Alcotest.(check (option (list int))) "no cycle at 0" None (T.shortest_path g 0 0);
  let c = cycle () in
  Alcotest.(check (option (list int))) "cycle back" (Some [ 0; 1; 2; 0 ])
    (T.shortest_path c 0 0)

let prop_topo_respects_edges =
  qtest "traversal: topo order respects edges" (dag_gen ()) print_digraph
    (fun g ->
      match T.topological_order g with
      | None -> false
      | Some order ->
          let pos = Array.make (D.n g) 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          D.fold_edges (fun u v acc -> acc && pos.(u) < pos.(v)) g true)

let prop_shortest_path_is_path =
  qtest "traversal: shortest_path returns real edges" (digraph_gen ())
    print_digraph (fun g ->
      let ok = ref true in
      for u = 0 to D.n g - 1 do
        for v = 0 to D.n g - 1 do
          match T.shortest_path g u v with
          | None -> ()
          | Some path ->
              let rec edges_ok = function
                | a :: (b :: _ as rest) ->
                    D.has_edge g a b && edges_ok rest
                | _ -> true
              in
              if
                not
                  (List.length path >= 2
                  && List.hd path = u
                  && List.hd (List.rev path) = v
                  && edges_ok path)
              then ok := false
        done
      done;
      !ok)

let prop_reachable_nonempty_matches_paths =
  qtest "traversal: reachable_nonempty agrees with shortest_path"
    (digraph_gen ()) print_digraph (fun g ->
      let ok = ref true in
      for u = 0 to D.n g - 1 do
        let r = T.reachable_nonempty g u in
        for v = 0 to D.n g - 1 do
          let has_path = T.shortest_path g u v <> None in
          if Bitset.mem r v <> has_path then ok := false
        done
      done;
      !ok)

let suite =
  [
    ( "traversal",
      [
        Alcotest.test_case "bfs/dfs order" `Quick test_bfs_dfs;
        Alcotest.test_case "reachable variants" `Quick test_reachable;
        Alcotest.test_case "nonempty reach on a cycle" `Quick
          test_reachable_nonempty_cycle;
        Alcotest.test_case "self loop reaches itself" `Quick test_self_loop;
        Alcotest.test_case "bfs distances" `Quick test_distances;
        Alcotest.test_case "topological order" `Quick test_topo;
        Alcotest.test_case "shortest non-empty path" `Quick test_shortest_path;
        prop_topo_respects_edges;
        prop_shortest_path_is_path;
        prop_reachable_nonempty_matches_paths;
      ] );
  ]
