open Helpers
module U = Phom_wis.Ungraph
module Ramsey = Phom_wis.Ramsey
module Wis = Phom_wis.Wis

let ungraph_gen ?(max_n = 10) () : U.t QCheck.Gen.t =
 fun st ->
  let n = 1 + Random.State.int st max_n in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float st 1.0 < 0.4 then edges := (u, v) :: !edges
    done
  done;
  let weights =
    Array.init n (fun _ -> float_of_int (1 + Random.State.int st 9))
  in
  U.create ~weights n !edges

let print_ungraph g = Format.asprintf "%a" U.pp g

let test_ramsey_on_square () =
  let g = U.create 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let clique, indep = Ramsey.ramsey g (Bitset.full 4) in
  Alcotest.(check bool) "clique valid" true (U.is_clique g clique);
  Alcotest.(check bool) "indep valid" true (U.is_independent g indep);
  Alcotest.(check bool) "nonempty" true (clique <> [] && indep <> [])

let test_removal_on_known_graphs () =
  (* K4: max clique 4, max IS 1 *)
  let k4 = U.create 4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  Alcotest.(check int) "K4 clique" 4 (List.length (Wis.max_clique k4));
  Alcotest.(check int) "K4 IS" 1 (List.length (Wis.max_independent_set k4));
  (* empty graph on 5 nodes: the duals *)
  let e5 = U.create 5 [] in
  Alcotest.(check int) "E5 clique" 1 (List.length (Wis.max_clique e5));
  Alcotest.(check int) "E5 IS" 5 (List.length (Wis.max_independent_set e5))

let test_weighted_prefers_heavy () =
  (* path 0-1-2 with a heavy middle: the heavy node alone beats both ends *)
  let g = U.create ~weights:[| 1.; 10.; 1. |] 3 [ (0, 1); (1, 2) ] in
  let s = Wis.max_weight_independent_set g in
  Alcotest.(check (list int)) "picks the heavy node" [ 1 ] s;
  (* unweighted would pick the two ends *)
  Alcotest.(check (list int)) "cardinality picks ends" [ 0; 2 ]
    (Wis.max_independent_set g)

let test_exact_clique () =
  let g =
    U.create 6 [ (0, 1); (0, 2); (1, 2); (2, 3); (3, 4); (4, 5); (3, 5) ]
  in
  let c, status = Wis.exact_max_clique g in
  Alcotest.(check bool) "complete" true (status = Phom_graph.Budget.Complete);
  Alcotest.(check int) "size 3" 3 (List.length c);
  Alcotest.(check bool) "is clique" true (U.is_clique g c)

let test_exact_clique_budget () =
  (* dense-ish random graph with a tiny budget gives up *)
  let rng = Random.State.make [| 5 |] in
  let n = 40 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < 0.5 then edges := (u, v) :: !edges
    done
  done;
  let g = U.create n !edges in
  let c, status = Wis.exact_max_clique ~budget:(Phom_graph.Budget.trip_after 10) g in
  Alcotest.(check bool) "gives up" true (status <> Phom_graph.Budget.Complete);
  Alcotest.(check bool) "best-so-far is a clique" true (U.is_clique g c)

let prop_outputs_valid =
  qtest ~count:80 "wis: removal outputs are valid" (ungraph_gen ())
    print_ungraph (fun g ->
      U.is_clique g (Wis.max_clique g)
      && U.is_independent g (Wis.max_independent_set g)
      && U.is_clique g (Wis.max_weight_clique g)
      && U.is_independent g (Wis.max_weight_independent_set g))

let prop_exact_geq_approx =
  qtest ~count:60 "wis: exact clique ≥ approx clique" (ungraph_gen ~max_n:9 ())
    print_ungraph (fun g ->
      match Wis.exact_max_clique g with
      | exact, Phom_graph.Budget.Complete ->
          List.length exact >= List.length (Wis.max_clique g)
      | _, Phom_graph.Budget.Exhausted _ -> true)

let prop_weighted_geq_heaviest =
  qtest ~count:60 "wis: weighted IS ≥ heaviest node" (ungraph_gen ())
    print_ungraph (fun g ->
      let s = Wis.max_weight_independent_set g in
      let heaviest = ref 0. in
      for v = 0 to U.n g - 1 do
        heaviest := Float.max !heaviest (U.weight g v)
      done;
      U.total_weight g s >= !heaviest -. 1e-9)

let prop_ramsey_subset =
  qtest ~count:60 "ramsey: respects the subset" (ungraph_gen ()) print_ungraph
    (fun g ->
      let n = U.n g in
      let subset = Bitset.create n in
      for v = 0 to n - 1 do
        if v mod 2 = 0 then Bitset.add subset v
      done;
      let clique, indep = Ramsey.ramsey g subset in
      List.for_all (fun v -> Bitset.mem subset v) clique
      && List.for_all (fun v -> Bitset.mem subset v) indep
      && U.is_clique g clique
      && U.is_independent g indep)

let suite =
  [
    ( "wis",
      [
        Alcotest.test_case "ramsey on a square" `Quick test_ramsey_on_square;
        Alcotest.test_case "removal on K4 / E5" `Quick test_removal_on_known_graphs;
        Alcotest.test_case "weighted prefers heavy nodes" `Quick
          test_weighted_prefers_heavy;
        Alcotest.test_case "exact clique" `Quick test_exact_clique;
        Alcotest.test_case "exact clique budget" `Quick test_exact_clique_budget;
        prop_outputs_valid;
        prop_exact_geq_approx;
        prop_weighted_geq_heaviest;
        prop_ramsey_subset;
      ] );
  ]
