open Helpers
module G = Phom_graph.Generators
module L = Phom_sim.Labelsim

let pool = G.pool_for 20 (* 100 labels, 10 groups *)

let t = L.make ~pool ~seed:99

let test_identity () =
  Alcotest.(check (float 1e-9)) "same label" 1.0 (L.sim t "L7" "L7")

let test_cross_group_zero () =
  (* L0 is in group 0, L1 in group 1 *)
  Alcotest.(check (float 1e-9)) "cross group" 0.0 (L.sim t "L0" "L1")

let test_same_group_in_range () =
  (* L0 and L10 share group 0 *)
  let s = L.sim t "L0" "L10" in
  Alcotest.(check bool) "in range" true (s >= 0. && s <= 1.)

let test_symmetric_deterministic () =
  Alcotest.(check (float 1e-12)) "symmetric" (L.sim t "L0" "L20") (L.sim t "L20" "L0");
  let t' = L.make ~pool ~seed:99 in
  Alcotest.(check (float 1e-12)) "deterministic" (L.sim t "L0" "L20")
    (L.sim t' "L0" "L20");
  let t2 = L.make ~pool ~seed:100 in
  Alcotest.(check bool) "seed-sensitive" true
    (L.sim t "L0" "L20" <> L.sim t2 "L0" "L20")

let test_matrix () =
  let g1 = graph [ "L0"; "L5" ] [] and g2 = graph [ "L0"; "L10" ] [] in
  let m = L.matrix t g1 g2 in
  Alcotest.(check (float 1e-9)) "diag" 1.0 (Simmat.get m 0 0);
  Alcotest.(check (float 1e-9)) "L5 vs L10 different groups" 0.0
    (Simmat.get m 1 1);
  Alcotest.(check (float 1e-9)) "L5 vs L0 different groups" 0.0 (Simmat.get m 1 0)

let test_distribution () =
  (* same-group similarities should spread over [0,1], not cluster *)
  let lows = ref 0 and highs = ref 0 in
  for i = 1 to 50 do
    let s = L.sim t "L0" ("L" ^ string_of_int (i * 10)) in
    if s < 0.5 then incr lows else incr highs
  done;
  Alcotest.(check bool) "both halves populated" true (!lows > 5 && !highs > 5)

let suite =
  [
    ( "labelsim",
      [
        Alcotest.test_case "identity" `Quick test_identity;
        Alcotest.test_case "cross-group is 0" `Quick test_cross_group_zero;
        Alcotest.test_case "same-group in [0,1]" `Quick test_same_group_in_range;
        Alcotest.test_case "symmetric + deterministic + seeded" `Quick
          test_symmetric_deterministic;
        Alcotest.test_case "matrix over graphs" `Quick test_matrix;
        Alcotest.test_case "values spread over [0,1]" `Quick test_distribution;
      ] );
  ]
