(* The durability layer: CRC-32 vectors, snapshot round trips, quarantine
   of corrupt and torn records, atomic-write failure injection, journal
   append/replay (including the kill -9 torn tail), and warm recovery of a
   daemon state from a previous state's dir — the in-process half of what
   scripts/chaos_smoke.sh proves against a live process. *)

module Persist = Phom_server.Persist
module Journal = Phom_server.Journal
module Catalog = Phom_server.Catalog
module Daemon = Phom_server.Daemon
module Protocol = Phom_server.Protocol
module Faults = Phom_server.Faults

let fig1_pattern = Filename.concat "../data" "fig1_pattern.phg"
let fig1_store = Filename.concat "../data" "fig1_store.phg"

let ok_or_fail = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let with_tmpdir f =
  let dir = Filename.temp_file "phom_persist" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Faults.clear ();
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

(* ---- CRC-32 ---- *)

let test_crc_vectors () =
  (* the standard zlib/IEEE check values *)
  Alcotest.(check string) "empty" "00000000" (Persist.crc32_hex "");
  Alcotest.(check string) "check string" "cbf43926"
    (Persist.crc32_hex "123456789");
  Alcotest.(check string) "fox" "414fa339"
    (Persist.crc32_hex "The quick brown fox jumps over the lazy dog");
  (* sensitivity: one flipped bit changes the sum *)
  Alcotest.(check bool) "bit flip detected" false
    (Persist.crc32 "123456789" = Persist.crc32 "123456788")

(* ---- snapshot round trip and quarantine ---- *)

let sample_records =
  [
    { Persist.kind = "graph"; name = "pat"; payload = "digraph 3\n0 1\n" };
    { Persist.kind = "mat"; name = "m"; payload = String.make 257 '\xab' };
    (* payloads with newlines and NULs must survive byte-exactly *)
    { Persist.kind = "artifact"; name = "closure/pat/full";
      payload = "bin\x00ary\nlines\n" };
  ]

let record =
  Alcotest.testable
    (fun ppf (r : Persist.record) ->
      Fmt.pf ppf "%s %s (%d bytes)" r.kind r.name (String.length r.payload))
    (fun a b ->
      a.Persist.kind = b.Persist.kind
      && a.Persist.name = b.Persist.name
      && a.Persist.payload = b.Persist.payload)

let test_snapshot_roundtrip () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "s.snap" in
      let bytes = ok_or_fail (Persist.write_snapshot ~path sample_records) in
      Alcotest.(check bool) "size reported" true (bytes > 0);
      Alcotest.(check bool) "tmp gone" false (Sys.file_exists (path ^ ".tmp"));
      let records, quarantined = ok_or_fail (Persist.read_snapshot ~path) in
      Alcotest.(check int) "clean read" 0 quarantined;
      Alcotest.(check (list record)) "byte-exact round trip" sample_records
        records;
      (* empty snapshots are legal *)
      ignore (ok_or_fail (Persist.write_snapshot ~path []));
      let records, quarantined = ok_or_fail (Persist.read_snapshot ~path) in
      Alcotest.(check int) "empty clean" 0 quarantined;
      Alcotest.(check (list record)) "empty" [] records)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let test_snapshot_corrupt_record_quarantined () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "s.snap" in
      ignore (ok_or_fail (Persist.write_snapshot ~path sample_records));
      let content = read_file path in
      (* flip one byte inside the 257-byte matrix payload *)
      let i = String.index content '\xab' in
      let corrupted = Bytes.of_string content in
      Bytes.set corrupted i 'X';
      write_file path (Bytes.to_string corrupted);
      let records, quarantined =
        ok_or_fail (Persist.read_snapshot ~path)
      in
      Alcotest.(check int) "one record quarantined" 1 quarantined;
      Alcotest.(check (list string)) "the others survive intact"
        [ "pat"; "closure/pat/full" ]
        (List.map (fun (r : Persist.record) -> r.name) records))

let test_snapshot_torn_tail_quarantined () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "s.snap" in
      ignore (ok_or_fail (Persist.write_snapshot ~path sample_records));
      let content = read_file path in
      (* the kill -9 mid-write shape: the file simply stops partway *)
      write_file path (String.sub content 0 (String.length content / 2));
      let records, quarantined =
        ok_or_fail (Persist.read_snapshot ~path)
      in
      Alcotest.(check bool) "tear detected" true (quarantined >= 1);
      Alcotest.(check (list string)) "verified prefix survives" [ "pat" ]
        (List.map (fun (r : Persist.record) -> r.name) records);
      (* not-a-snapshot is an error, not a silent empty read *)
      write_file path "something else entirely\n";
      match Persist.read_snapshot ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad header must be refused")

let test_snapshot_write_failure_atomic () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "s.snap" in
      ignore (ok_or_fail (Persist.write_snapshot ~path sample_records));
      let before = read_file path in
      (* ENOSPC halfway through the replacement write *)
      Faults.inject Faults.Fwrite ~after:0 (Faults.Fail Unix.ENOSPC);
      (match
         Persist.write_snapshot ~path
           [ { Persist.kind = "graph"; name = "other"; payload = "xx" } ]
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "injected ENOSPC must surface as Error");
      Faults.clear ();
      Alcotest.(check bool) "no tmp litter" false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check string) "old snapshot intact" before (read_file path))

let test_bad_record_tokens_rejected () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "s.snap" in
      match
        Persist.write_snapshot ~path
          [ { Persist.kind = "graph"; name = "a b"; payload = "" } ]
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "a name with a space must be refused")

(* ---- journal ---- *)

let sample_events =
  [
    Journal.Load_graph
      { name = "pat"; path = "/tmp/dir with space/p.phg"; crc = "cbf43926" };
    Journal.Load_mat { name = "m"; path = "/tmp/m.phs"; crc = "00000000" };
    Journal.Artifact "closure/pat/full";
    Journal.Edit { name = "pat"; op = "add"; v = 0; w = 3; crc = "deadbeef" };
    Journal.Unload "pat";
  ]

let event =
  Alcotest.testable
    (fun ppf (e : Journal.event) ->
      Fmt.string ppf
        (match e with
        | Journal.Load_graph { name; path; crc } ->
            Printf.sprintf "load-graph %s %s %s" name path crc
        | Journal.Load_mat { name; path; crc } ->
            Printf.sprintf "load-mat %s %s %s" name path crc
        | Journal.Unload n -> "unload " ^ n
        | Journal.Edit { name; op; v; w; crc } ->
            Printf.sprintf "edit %s %s %d %d %s" name op v w crc
        | Journal.Artifact t -> "artifact " ^ t))
    ( = )

let test_journal_roundtrip () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "j.journal" in
      let j = ok_or_fail (Journal.open_append ~path ~fsync:Journal.Always) in
      List.iter (Journal.append j) sample_events;
      Alcotest.(check int) "all appended" 5 (Journal.appended j);
      Alcotest.(check int) "no errors" 0 (Journal.errors j);
      Journal.close j;
      let events, quarantined = ok_or_fail (Journal.replay ~path) in
      Alcotest.(check int) "clean replay" 0 quarantined;
      Alcotest.(check (list event)) "events round trip (paths with spaces)"
        sample_events events)

let test_journal_torn_tail_stops_replay () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "j.journal" in
      let j = ok_or_fail (Journal.open_append ~path ~fsync:Journal.Never) in
      List.iter (Journal.append j) sample_events;
      Journal.close j;
      (* tear the last line in half, as a kill -9 mid-append would *)
      let content = read_file path in
      write_file path (String.sub content 0 (String.length content - 9));
      let events, quarantined = ok_or_fail (Journal.replay ~path) in
      Alcotest.(check int) "tear quarantined" 1 quarantined;
      Alcotest.(check (list event)) "replay stops at the tear"
        [ List.nth sample_events 0; List.nth sample_events 1;
          List.nth sample_events 2; List.nth sample_events 3 ]
        events;
      (* a corrupted middle line also stops replay: order past it is
         untrustworthy *)
      let lines = String.split_on_char '\n' content in
      let flipped =
        List.mapi
          (fun i l ->
            if i = 2 then "J1 deadbeef " ^ String.concat " " [ "unload"; "pat" ]
            else l)
          lines
      in
      write_file path (String.concat "\n" flipped);
      let events, quarantined = ok_or_fail (Journal.replay ~path) in
      Alcotest.(check int) "bad line quarantined" 1 quarantined;
      Alcotest.(check int) "only the verified prefix replays" 1
        (List.length events))

let test_journal_rotate_and_append_failure () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "j.journal" in
      let j = ok_or_fail (Journal.open_append ~path ~fsync:Journal.Interval) in
      List.iter (Journal.append j) sample_events;
      Journal.rotate j;
      (* rotation supersedes everything: an immediately following replay is
         empty, and the fd keeps working for post-rotation appends *)
      let events, quarantined = ok_or_fail (Journal.replay ~path) in
      Alcotest.(check int) "rotated clean" 0 quarantined;
      Alcotest.(check (list event)) "rotated empty" [] events;
      Journal.append j (Journal.Unload "late");
      Journal.flush j;
      let events, _ = ok_or_fail (Journal.replay ~path) in
      Alcotest.(check (list event)) "append after rotate survives"
        [ Journal.Unload "late" ] events;
      (* a failed append degrades, never raises *)
      Faults.inject Faults.Fwrite ~after:0 (Faults.Fail Unix.ENOSPC);
      Journal.append j (Journal.Unload "lost");
      Faults.clear ();
      Alcotest.(check int) "failure counted" 1 (Journal.errors j);
      Journal.close j;
      let events, _ = ok_or_fail (Journal.replay ~path) in
      Alcotest.(check (list event)) "failed append left no trace"
        [ Journal.Unload "late" ] events)

(* ---- catalog restore defenses ---- *)

let test_restore_record_defenses () =
  let c = Catalog.create () in
  let expect_error name r =
    match Catalog.restore_record c r with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: must be quarantined" name
  in
  expect_error "unknown kind"
    { Persist.kind = "wat"; name = "x"; payload = "" };
  expect_error "undecodable graph"
    { Persist.kind = "graph"; name = "g"; payload = "not a graph" };
  expect_error "unknown artifact key"
    { Persist.kind = "artifact"; name = "bogus/token"; payload = "x" };
  expect_error "artifact for an absent graph"
    {
      Persist.kind = "artifact";
      name = "closure/ghost/full";
      payload = "not even marshal";
    }

(* ---- daemon state recovery ---- *)

let exec st line =
  match Protocol.parse line with
  | Error m -> Alcotest.failf "parse %S: %s" line m
  | Ok req -> fst (Daemon.execute st req)

let check_prefix name prefix reply =
  if
    not
      (String.length reply >= String.length prefix
      && String.sub reply 0 (String.length prefix) = prefix)
  then Alcotest.failf "%s: expected %S..., got %S" name prefix reply

let durable_config dir =
  {
    Daemon.default_config with
    Daemon.state_dir = Some dir;
    fsync = Journal.Always;
  }

let solve_line = "solve card pat store --sim shingles --xi 0.5"

let test_state_recovery_warm () =
  with_tmpdir (fun dir ->
      let warm_reply =
        let st = Daemon.make_state (durable_config dir) in
        check_prefix "load pat" "ok loaded graph pat"
          (exec st ("load graph pat " ^ fig1_pattern));
        check_prefix "load store" "ok loaded graph store"
          (exec st ("load graph store " ^ fig1_store));
        check_prefix "cold solve" "ok solve problem=CPH" (exec st solve_line);
        let warm = exec st solve_line in
        Alcotest.(check bool) "warm is all hits" true
          (Helpers.count_substring
             ~needle:"cache=closure:hit,mat:hit,cands:hit" warm = 1);
        Daemon.close_state st;
        warm
      in
      (* a second state over the same dir starts warm: same graphs, same
         artifacts, and the very first solve is byte-identical to the
         previous life's warm reply — hits and all *)
      let st2 = Daemon.make_state (durable_config dir) in
      let health = exec st2 "health" in
      check_prefix "recovered ready" "ok health state=ready" health;
      Alcotest.(check bool) "both graphs recovered" true
        (Helpers.count_substring ~needle:"recovered_graphs=2" health = 1);
      Alcotest.(check bool) "artifacts recovered" true
        (Helpers.count_substring ~needle:"recovered_artifacts=0" health = 0);
      Alcotest.(check bool) "nothing quarantined" true
        (Helpers.count_substring ~needle:"quarantined=0" health = 1);
      check_prefix "list recovered" "ok graphs=[pat" (exec st2 "list");
      Alcotest.(check string) "first post-recovery solve byte-identical"
        warm_reply (exec st2 solve_line);
      Daemon.close_state st2)

let test_state_recovery_journal_replay () =
  with_tmpdir (fun dir ->
      (* life 1 loads graphs but never drains: the loads live only in the
         journal (the initial snapshot was empty), as after a kill -9 *)
      let st = Daemon.make_state (durable_config dir) in
      ignore (exec st ("load graph pat " ^ fig1_pattern));
      ignore (exec st ("load graph store " ^ fig1_store));
      ignore (exec st solve_line);
      (* no close_state: simulate the crash by dropping the state *)
      let st2 = Daemon.make_state (durable_config dir) in
      let health = exec st2 "health" in
      check_prefix "recovered ready" "ok health state=ready" health;
      Alcotest.(check bool) "events replayed" true
        (Helpers.count_substring ~needle:"journal_replayed=0" health = 0);
      check_prefix "graphs back" "ok graphs=[pat" (exec st2 "list");
      (* replayed artifact events recomputed the cache: first solve hits *)
      Alcotest.(check bool) "warm after replay" true
        (Helpers.count_substring
           ~needle:"cache=closure:hit,mat:hit,cands:hit"
           (exec st2 solve_line)
        = 1);
      Daemon.close_state st2;
      Daemon.close_state st)

let test_state_recovery_quarantines_corruption () =
  with_tmpdir (fun dir ->
      (let st = Daemon.make_state (durable_config dir) in
       ignore (exec st ("load graph pat " ^ fig1_pattern));
       ignore (exec st ("load graph store " ^ fig1_store));
       ignore (exec st solve_line);
       Daemon.close_state st);
      (* XOR-flip a span of the store graph's payload: a guaranteed byte
         change wherever marshalled artifacts might legitimately hold any
         value *)
      let snap = Filename.concat dir "state.snap" in
      let content = Bytes.of_string (read_file snap) in
      let find_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i =
          if i + m > n then Alcotest.failf "%S not found in snapshot" sub
          else if String.sub s i m = sub then i
          else go (i + 1)
        in
        go 0
      in
      let hdr = find_sub (Bytes.to_string content) "record graph store " in
      let pos = 1 + Bytes.index_from content hdr '\n' in
      for k = 0 to 7 do
        Bytes.set content (pos + k)
          (Char.chr (Char.code (Bytes.get content (pos + k)) lxor 0xff))
      done;
      write_file snap (Bytes.to_string content);
      let st2 = Daemon.make_state (durable_config dir) in
      let health = exec st2 "health" in
      (* degraded, counted — but serving *)
      check_prefix "degraded" "ok health state=degraded" health;
      Alcotest.(check bool) "quarantine counted" true
        (Helpers.count_substring ~needle:"quarantined=0" health = 0);
      check_prefix "still serves" "ok phomd" (exec st2 "version");
      (* the quarantined graph is simply absent; the daemon keeps working *)
      ignore (exec st2 ("load graph pat2 " ^ fig1_pattern));
      check_prefix "solve after quarantine" "ok solve problem=CPH"
        (exec st2 "solve card pat2 pat2 --sim shingles --xi 0.5");
      Daemon.close_state st2)

let test_state_dir_unusable_fails_fast () =
  with_tmpdir (fun dir ->
      let file = Filename.concat dir "plain" in
      write_file file "not a directory\n";
      match Daemon.make_state (durable_config (Filename.concat file "sub")) with
      | exception Sys_error _ -> ()
      | _st -> Alcotest.fail "an unusable state dir must fail fast")

let suite =
  [
    ( "persist",
      [
        Alcotest.test_case "crc32 vectors" `Quick test_crc_vectors;
        Alcotest.test_case "snapshot round trip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "corrupt record quarantined" `Quick
          test_snapshot_corrupt_record_quarantined;
        Alcotest.test_case "torn tail quarantined" `Quick
          test_snapshot_torn_tail_quarantined;
        Alcotest.test_case "write failure stays atomic" `Quick
          test_snapshot_write_failure_atomic;
        Alcotest.test_case "bad record tokens rejected" `Quick
          test_bad_record_tokens_rejected;
        Alcotest.test_case "journal round trip" `Quick test_journal_roundtrip;
        Alcotest.test_case "journal torn tail stops replay" `Quick
          test_journal_torn_tail_stops_replay;
        Alcotest.test_case "journal rotate and append failure" `Quick
          test_journal_rotate_and_append_failure;
        Alcotest.test_case "restore-record defenses" `Quick
          test_restore_record_defenses;
        Alcotest.test_case "state recovery is warm" `Quick
          test_state_recovery_warm;
        Alcotest.test_case "journal-only recovery" `Quick
          test_state_recovery_journal_replay;
        Alcotest.test_case "corruption quarantined, still serves" `Quick
          test_state_recovery_quarantines_corruption;
        Alcotest.test_case "unusable state dir fails fast" `Quick
          test_state_dir_unusable_fails_fast;
      ] );
  ]
