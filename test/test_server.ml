(* The matching service: catalog semantics, artifact-cache behaviour
   (hit/miss provenance, unload invalidation, the budget poisoning rule),
   protocol parsing, request execution, and a live socket round trip. *)

module D = Phom_graph.Digraph
module IO = Phom_graph.Graph_io
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Catalog = Phom_server.Catalog
module Protocol = Phom_server.Protocol
module Daemon = Phom_server.Daemon
module Client = Phom_server.Client

let fig1_pattern = Filename.concat "../data" "fig1_pattern.phg"
let fig1_store = Filename.concat "../data" "fig1_store.phg"
let fig1_mate = Filename.concat "../data" "fig1_mate.phs"

let prov = Alcotest.of_pp (fun ppf p -> Fmt.string ppf (Catalog.provenance_name p))

let ok_or_fail = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let loaded_catalog () =
  let c = Catalog.create () in
  ignore (ok_or_fail (Catalog.load_graph c ~name:"pat" ~path:fig1_pattern));
  ignore (ok_or_fail (Catalog.load_graph c ~name:"store" ~path:fig1_store));
  c

(* ---- catalog ---- *)

let test_valid_name () =
  List.iter
    (fun n -> Alcotest.(check bool) n true (Catalog.valid_name n))
    [ "a"; "G2"; "web-site.v2"; "x_y"; String.make 64 'a' ];
  List.iter
    (fun n -> Alcotest.(check bool) ("bad: " ^ n) false (Catalog.valid_name n))
    [ ""; "a b"; "a/b"; "caf\xc3\xa9"; String.make 65 'a' ]

let test_load_list_unload () =
  let c = loaded_catalog () in
  let graphs, mats = Catalog.list c in
  Alcotest.(check (list string)) "graphs sorted" [ "pat"; "store" ]
    (List.map fst graphs);
  Alcotest.(check int) "no matrices" 0 (List.length mats);
  Alcotest.(check int) "unload drops nothing cached yet" 0
    (ok_or_fail (Catalog.unload c "pat"));
  let graphs, _ = Catalog.list c in
  Alcotest.(check (list string)) "pat gone" [ "store" ] (List.map fst graphs);
  (match Catalog.unload c "pat" with
  | Error m ->
      Alcotest.(check string) "unload unknown" "name pat is not loaded" m
  | Ok _ -> Alcotest.fail "unloading twice must fail")

let test_duplicate_name_refused () =
  let c = loaded_catalog () in
  (match Catalog.load_graph c ~name:"pat" ~path:fig1_store with
  | Error m ->
      Alcotest.(check string) "refused"
        "name pat is already loaded (unload it first)" m
  | Ok _ -> Alcotest.fail "loading over a live name must fail");
  (* the namespace is shared across kinds *)
  match Catalog.load_mat c ~name:"store" ~path:fig1_mate with
  | Error m ->
      Alcotest.(check string) "shared namespace"
        "name store is already loaded (unload it first)" m
  | Ok _ -> Alcotest.fail "matrix over a graph name must fail"

let test_wrong_kind_errors () =
  let c = loaded_catalog () in
  ignore (ok_or_fail (Catalog.load_mat c ~name:"m" ~path:fig1_mate));
  (match Catalog.graph c "m" with
  | Error m ->
      Alcotest.(check string) "mat as graph"
        "m is a similarity matrix, not a graph" m
  | Ok _ -> Alcotest.fail "a matrix must not look up as a graph");
  match Catalog.mat c "pat" with
  | Error m ->
      Alcotest.(check string) "graph as mat"
        "pat is a graph, not a similarity matrix" m
  | Ok _ -> Alcotest.fail "a graph must not look up as a matrix"

(* ---- artifact cache through the catalog ---- *)

let test_closure_hit_miss_invalidation () =
  let c = loaded_catalog () in
  let _, p1 = ok_or_fail (Catalog.closure c ~name:"store" ~hops:None) in
  let m2, p2 = ok_or_fail (Catalog.closure c ~name:"store" ~hops:None) in
  Alcotest.check prov "cold is a miss" Catalog.Miss p1;
  Alcotest.check prov "warm is a hit" Catalog.Hit p2;
  (* a different hop bound is a different artifact *)
  let _, p3 = ok_or_fail (Catalog.closure c ~name:"store" ~hops:(Some 2)) in
  Alcotest.check prov "other hops is a miss" Catalog.Miss p3;
  (* hit returns the resident matrix, not a recomputation *)
  let m2', _ = ok_or_fail (Catalog.closure c ~name:"store" ~hops:None) in
  Alcotest.(check bool) "physically shared" true (m2 == m2');
  let dropped = ok_or_fail (Catalog.unload c "store") in
  Alcotest.(check int) "both artifacts invalidated" 2 dropped;
  let s = Catalog.cache_stats c in
  Alcotest.(check int) "cache empty" 0 s.Phom_server.Lru.entries;
  Alcotest.(check int) "invalidation is not eviction" 0 s.Phom_server.Lru.evictions

let test_tripped_budget_not_cached () =
  let c = loaded_catalog () in
  let b = Budget.create ~steps:1 () in
  let _, p1 = ok_or_fail (Catalog.closure ~budget:b c ~name:"store" ~hops:None) in
  Alcotest.check prov "first computes" Catalog.Miss p1;
  Alcotest.(check bool) "budget tripped" true (Budget.exhausted b);
  (* the truncated closure must not have been cached *)
  let _, p2 = ok_or_fail (Catalog.closure c ~name:"store" ~hops:None) in
  Alcotest.check prov "full recompute, not a poisoned hit" Catalog.Miss p2;
  let _, p3 = ok_or_fail (Catalog.closure c ~name:"store" ~hops:None) in
  Alcotest.check prov "now cached" Catalog.Hit p3

let test_similarity_cache_and_named () =
  let c = loaded_catalog () in
  let _, p1 = ok_or_fail (Catalog.similarity c ~g1:"pat" ~g2:"store" ~sim:Catalog.Shingles) in
  let _, p2 = ok_or_fail (Catalog.similarity c ~g1:"pat" ~g2:"store" ~sim:Catalog.Shingles) in
  Alcotest.check prov "computed once" Catalog.Miss p1;
  Alcotest.check prov "then cached" Catalog.Hit p2;
  ignore (ok_or_fail (Catalog.load_mat c ~name:"mate" ~path:fig1_mate));
  let _, p3 =
    ok_or_fail (Catalog.similarity c ~g1:"pat" ~g2:"store" ~sim:(Catalog.Named "mate"))
  in
  Alcotest.check prov "named matrices come from the catalog" Catalog.Catalog p3;
  (* dimension guard: mate is pat x store, so the swapped pair must fail *)
  match Catalog.similarity c ~g1:"store" ~g2:"pat" ~sim:(Catalog.Named "mate") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dimension mismatch must be refused"

let make_instance c ~xi =
  let g1 = ok_or_fail (Catalog.graph c "pat") in
  let g2 = ok_or_fail (Catalog.graph c "store") in
  let tc2, _ = ok_or_fail (Catalog.closure c ~name:"store" ~hops:None) in
  let mat, _ = ok_or_fail (Catalog.similarity c ~g1:"pat" ~g2:"store" ~sim:Catalog.Shingles) in
  Phom.Instance.make ~tc2 ~g1 ~g2 ~mat ~xi ()

let test_candidates_cache () =
  let c = loaded_catalog () in
  let t1 = make_instance c ~xi:0.5 in
  let p1 =
    Catalog.candidates c ~instance:t1 ~g1:"pat" ~g2:"store" ~sim:Catalog.Shingles
      ~hops:None
  in
  Alcotest.check prov "cold derives" Catalog.Miss p1;
  let t2 = make_instance c ~xi:0.5 in
  let p2 =
    Catalog.candidates c ~instance:t2 ~g1:"pat" ~g2:"store" ~sim:Catalog.Shingles
      ~hops:None
  in
  Alcotest.check prov "fresh instance, same key: primed from cache" Catalog.Hit p2;
  Alcotest.(check bool) "tables shared"
    true
    (Phom.Instance.candidates t1 == Phom.Instance.candidates t2);
  (* ξ is part of the key *)
  let t3 = make_instance c ~xi:0.9 in
  let p3 =
    Catalog.candidates c ~instance:t3 ~g1:"pat" ~g2:"store" ~sim:Catalog.Shingles
      ~hops:None
  in
  Alcotest.check prov "other xi is a miss" Catalog.Miss p3

(* ---- protocol ---- *)

let test_protocol_parse_ok () =
  (match Protocol.parse "  version " with
  | Ok Protocol.Version -> ()
  | _ -> Alcotest.fail "version");
  (match Protocol.parse "load graph g2 /tmp/g2.phg" with
  | Ok (Protocol.Load_graph { name = "g2"; path = "/tmp/g2.phg" }) -> ()
  | _ -> Alcotest.fail "load graph");
  match
    Protocol.parse
      "solve card11 pat store --sim shingles --xi 0.5 --hops 3 --timeout 1.5 \
       --steps 100 --algorithm exact --partition --compress --jobs 1"
  with
  | Ok (Protocol.Solve s) ->
      Alcotest.(check string) "problem" "card11" (Protocol.problem_token s.Protocol.problem);
      Alcotest.(check string) "g1" "pat" s.Protocol.g1;
      Alcotest.(check string) "g2" "store" s.Protocol.g2;
      Alcotest.(check string) "sim" "shingles" (Catalog.sim_to_string s.Protocol.sim);
      Alcotest.(check (float 1e-9)) "xi" 0.5 s.Protocol.xi;
      Alcotest.(check (option int)) "hops" (Some 3) s.Protocol.hops;
      Alcotest.(check (option (float 1e-9))) "timeout" (Some 1.5) s.Protocol.timeout;
      Alcotest.(check (option int)) "steps" (Some 100) s.Protocol.steps;
      Alcotest.(check bool) "partition" true s.Protocol.partition;
      Alcotest.(check bool) "compress" true s.Protocol.compress;
      Alcotest.(check bool) "sequential" true s.Protocol.sequential
  | Ok _ -> Alcotest.fail "parsed as a non-solve"
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_protocol_parse_errors () =
  let expect_error line =
    match Protocol.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%S must not parse" line
  in
  List.iter expect_error
    [
      "";
      "bogus";
      "load graph onlyname";
      "unload";
      "solve card onlyone";
      "solve nope a b";
      "solve card a b --xi 1.5";
      "solve card a b --xi";
      "solve card a b --hops 0";
      "solve card a b --timeout -1";
      "solve card a b --steps -5";
      "solve card a b --jobs 0";
      "solve card a b --algorithm quantum";
      "solve card a b --sim cosine";
      "solve card a b --sim equality --mat m";
      "solve card a b --frobnicate";
    ]

(* ---- request execution (socket-free) ---- *)

let exec st line =
  match Protocol.parse line with
  | Error m -> Alcotest.failf "parse %S: %s" line m
  | Ok req -> Daemon.execute st req

let check_prefix name prefix (reply, _) =
  if
    not
      (String.length reply >= String.length prefix
      && String.sub reply 0 (String.length prefix) = prefix)
  then Alcotest.failf "%s: expected %S..., got %S" name prefix reply

let test_execute_lifecycle () =
  let st = Daemon.make_state Daemon.default_config in
  check_prefix "version" ("ok phomd " ^ Phom_server.Version.string) (exec st "version");
  check_prefix "empty list" "ok graphs=[] mats=[]" (exec st "list");
  check_prefix "load pat" "ok loaded graph pat nodes=6 edges=6"
    (exec st ("load graph pat " ^ fig1_pattern));
  check_prefix "load store" "ok loaded graph store nodes=14 edges=14"
    (exec st ("load graph store " ^ fig1_store));
  let r1, _ = exec st "solve card pat store --sim shingles --xi 0.5" in
  check_prefix "cold solve" "ok solve problem=CPH" (r1, `Continue);
  Alcotest.(check bool) "cold provenance" true
    (Helpers.count_substring ~needle:"cache=closure:miss,mat:miss,cands:miss" r1 = 1);
  let r2, _ = exec st "solve card pat store --sim shingles --xi 0.5" in
  Alcotest.(check bool) "warm provenance" true
    (Helpers.count_substring ~needle:"cache=closure:hit,mat:hit,cands:hit" r2 = 1);
  (* identical answers, cold and warm (only provenance may differ) *)
  let before_cache r =
    match Helpers.count_substring ~needle:" cache=" r with
    | 1 ->
        let rec find i = if String.sub r i 7 = " cache=" then i else find (i + 1) in
        String.sub r 0 (find 0)
    | _ -> r
  in
  Alcotest.(check string) "same reply cold vs warm" (before_cache r1) (before_cache r2);
  check_prefix "unload" "ok unloaded store artifacts=" (exec st "unload store");
  check_prefix "solve after unload" "error unknown graph store"
    (exec st "solve card pat store");
  let stats, _ = exec st "stats" in
  (match String.split_on_char '\n' stats with
  | header :: body ->
      check_prefix "stats header" "ok stats " (header, `Continue);
      Alcotest.(check bool)
        "stats line count matches header" true
        (header = Printf.sprintf "ok stats %d" (List.length body));
      Alcotest.(check bool)
        "stats carries the daemon family" true
        (List.exists
           (fun l -> Helpers.contains_substring ~needle:"phom_daemon_requests_total" l)
           body)
  | [] -> Alcotest.fail "empty stats reply");
  let _, next = exec st "quit" in
  Alcotest.(check bool) "quit closes" true (next = `Quit);
  let _, next = exec st "shutdown" in
  Alcotest.(check bool) "shutdown stops" true (next = `Shutdown);
  Alcotest.(check bool) "requests counted" true (Daemon.requests_served st >= 10)

let test_execute_budget_trip () =
  let st = Daemon.make_state Daemon.default_config in
  ignore (exec st ("load graph pat " ^ fig1_pattern));
  ignore (exec st ("load graph store " ^ fig1_store));
  let r, _ = exec st "solve card pat store --sim shingles --xi 0.5 --steps 2" in
  Alcotest.(check bool) "anytime reply" true
    (Helpers.count_substring ~needle:"status=exhausted(steps)" r = 1);
  (* the truncated artifacts were not cached: a full solve recomputes *)
  let r2, _ = exec st "solve card pat store --sim shingles --xi 0.5" in
  Alcotest.(check bool) "no poisoned closure/cands" true
    (Helpers.count_substring ~needle:"closure:miss" r2 = 1
    && Helpers.count_substring ~needle:"cands:miss" r2 = 1)

let test_ping_health () =
  let st = Daemon.make_state Daemon.default_config in
  check_prefix "ping" "ok pong" (exec st "ping");
  let health, _ = exec st "health" in
  check_prefix "ready" "ok health state=ready" (health, `Continue);
  (* an ephemeral daemon reports that it carries no durable state *)
  Alcotest.(check bool) "no persistence" true
    (Helpers.count_substring ~needle:"persist=false" health = 1);
  Alcotest.(check bool) "zero recovery counters" true
    (Helpers.count_substring ~needle:"quarantined=0" health = 1);
  (* addedge/deledge are protocol 5: the banner must advertise it *)
  let version, _ = exec st "version" in
  Alcotest.(check bool) "protocol 5 advertised" true
    (Helpers.count_substring ~needle:"protocol 5" version = 1)

(* ---- live socket round trip ---- *)

let test_socket_roundtrip () =
  let dir = Filename.temp_file "phomd_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "d.sock" in
  let ready_lock = Mutex.create () and ready_cond = Condition.create () in
  let is_ready = ref false in
  let config =
    { Daemon.default_config with Daemon.socket_path = Some sock }
  in
  let server =
    Domain.spawn (fun () ->
        Daemon.serve
          ~ready:(fun _ ->
            Mutex.lock ready_lock;
            is_ready := true;
            Condition.signal ready_cond;
            Mutex.unlock ready_lock)
          config)
  in
  Mutex.lock ready_lock;
  while not !is_ready do
    Condition.wait ready_cond ready_lock
  done;
  Mutex.unlock ready_lock;
  let addr = ok_or_fail (Client.sockaddr_of_string sock) in
  let ask line = ok_or_fail (Client.request addr line) in
  let check_reply name prefix line =
    let reply = ask line in
    if
      not
        (String.length reply >= String.length prefix
        && String.sub reply 0 (String.length prefix) = prefix)
    then Alcotest.failf "%s: expected %S..., got %S" name prefix reply
  in
  check_reply "version over the wire" "ok phomd" "version";
  check_reply "load" "ok loaded graph pat" ("load graph pat " ^ fig1_pattern);
  check_reply "load" "ok loaded graph store" ("load graph store " ^ fig1_store);
  check_reply "solve" "ok solve problem=CPH" "solve card pat store --sim shingles";
  check_reply "bad request" "error unknown command" "abracadabra";
  (* several requests on one connection *)
  let conn = ok_or_fail (Client.connect addr) in
  check_prefix "pipelined 1" "ok stats" (ok_or_fail (Client.send conn "stats"), `Continue);
  check_prefix "pipelined 2" "ok graphs=[pat" (ok_or_fail (Client.send conn "list"), `Continue);
  Client.close conn;
  check_reply "shutdown" "ok shutting down" "shutdown";
  Domain.join server;
  Alcotest.(check bool) "socket unlinked on shutdown" false (Sys.file_exists sock);
  Unix.rmdir dir

let suite =
  [
    ( "server",
      [
        Alcotest.test_case "valid_name" `Quick test_valid_name;
        Alcotest.test_case "load/list/unload" `Quick test_load_list_unload;
        Alcotest.test_case "duplicate name refused" `Quick test_duplicate_name_refused;
        Alcotest.test_case "wrong-kind errors" `Quick test_wrong_kind_errors;
        Alcotest.test_case "closure hit/miss/invalidation" `Quick
          test_closure_hit_miss_invalidation;
        Alcotest.test_case "tripped budget not cached" `Quick
          test_tripped_budget_not_cached;
        Alcotest.test_case "similarity cache and named" `Quick
          test_similarity_cache_and_named;
        Alcotest.test_case "candidates cache" `Quick test_candidates_cache;
        Alcotest.test_case "protocol parse ok" `Quick test_protocol_parse_ok;
        Alcotest.test_case "protocol parse errors" `Quick test_protocol_parse_errors;
        Alcotest.test_case "execute lifecycle" `Quick test_execute_lifecycle;
        Alcotest.test_case "execute budget trip" `Quick test_execute_budget_trip;
        Alcotest.test_case "ping and health" `Quick test_ping_health;
        Alcotest.test_case "socket round trip" `Quick test_socket_roundtrip;
      ] );
  ]
