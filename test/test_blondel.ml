open Helpers
module Blondel = Phom_sim.Blondel

let test_runs_and_normalizes () =
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let m = Blondel.similarity g1 g2 in
  Alcotest.(check (float 1e-9)) "max is 1" 1.0 (Simmat.max_value m)

let test_hub_matches_hub () =
  (* a star centre should be most similar to the other star's centre *)
  let star n =
    graph (List.init (n + 1) (fun i -> "n" ^ string_of_int i))
      (List.init n (fun i -> (0, i + 1)))
  in
  let g1 = star 4 and g2 = star 5 in
  let m = Blondel.similarity g1 g2 in
  let centre = Simmat.get m 0 0 in
  Alcotest.(check bool) "centre-centre maximal" true
    (centre >= Simmat.get m 0 1 && centre >= Simmat.get m 1 0);
  Alcotest.(check (float 1e-9)) "centre is the max" 1.0 centre

let test_isolated_nodes () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "b" ] [] in
  let m = Blondel.similarity g1 g2 in
  (* no structure at all: iteration collapses to zero and normalization is a
     no-op; just check it does not blow up *)
  Alcotest.(check bool) "finite" true (Float.is_finite (Simmat.get m 0 0))

let prop_in_range =
  qtest ~count:40 "blondel: all entries in [0,1]"
    (QCheck.Gen.pair (digraph_gen ~max_n:6 ()) (digraph_gen ~max_n:6 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      let m = Blondel.similarity g1 g2 in
      let ok = ref true in
      for v = 0 to Simmat.n1 m - 1 do
        for u = 0 to Simmat.n2 m - 1 do
          let s = Simmat.get m v u in
          if not (s >= 0. && s <= 1.) then ok := false
        done
      done;
      !ok)

let suite =
  [
    ( "blondel",
      [
        Alcotest.test_case "runs and normalizes" `Quick test_runs_and_normalizes;
        Alcotest.test_case "hub matches hub" `Quick test_hub_matches_hub;
        Alcotest.test_case "isolated nodes" `Quick test_isolated_nodes;
        prop_in_range;
      ] );
  ]
