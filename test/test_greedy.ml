open Helpers
module ML = Phom.Matching_list
module Greedy = Phom.Greedy
module CMC = Phom.Comp_max_card

let run_greedy (t : Instance.t) =
  let h = ML.of_candidates (Instance.candidates t) in
  Greedy.run ~g1:t.g1 ~tc2:t.tc2 ~choose_u:(Instance.choose_best t) ~mode:`Free h

let test_empty () =
  let t = eq_instance (graph [] []) (graph [] []) in
  let r = run_greedy t in
  Alcotest.(check (list (pair int int))) "sigma" [] r.Greedy.sigma;
  Alcotest.(check (list (pair int int))) "conflict" [] r.Greedy.conflict

let test_conflict_nonempty () =
  (* the paper remarks I is non-empty whenever H is *)
  let t = eq_instance (graph [ "a" ] []) (graph [ "a"; "a" ] []) in
  let r = run_greedy t in
  Alcotest.(check bool) "sigma found" true (r.Greedy.sigma <> []);
  Alcotest.(check bool) "conflict non-empty" true (r.Greedy.conflict <> [])

let test_bad_choose_u_rejected () =
  let t = eq_instance (graph [ "a" ] []) (graph [ "a" ] []) in
  let h = ML.of_candidates (Instance.candidates t) in
  Alcotest.check_raises "non-candidate"
    (Invalid_argument "Greedy.run: choose_u returned a non-candidate") (fun () ->
      ignore
        (Greedy.run ~g1:t.Instance.g1 ~tc2:t.Instance.tc2
           ~choose_u:(fun _ _ -> 99)
           ~mode:`Free h))

let test_deep_recursion_is_heap_bounded () =
  (* hundreds of pattern nodes over many shared candidates: the paper's
     recursive greedyMatch would nest thousands of frames; the
     defunctionalized runner must survive easily *)
  let n = 120 in
  let labels = Array.make n "x" in
  let g1 = D.make ~labels ~edges:(List.init (n - 1) (fun i -> (i, i + 1))) in
  let g2 =
    D.make ~labels:(Array.make (n + 5) "x")
      ~edges:(List.init (n + 4) (fun i -> (i, i + 1)))
  in
  let t = eq_instance g1 g2 in
  let m = CMC.run t in
  check_valid t m;
  (* quality note: with every node sharing one label the max-|good| pick
     maps alternate chain nodes onto a single target (their induced
     subgraph is edgeless, so that is a valid mapping) and converges to
     ~0.5 — the approximation algorithm exercising its guarantee rather
     than finding the planted optimum. What this test pins down is that the
     deep recursion completes on the heap and stays valid. *)
  Alcotest.(check bool) "substantial mapping" true
    (Instance.qual_card t m >= 0.4)

let prop_sigma_and_conflict_from_h =
  qtest ~count:100 "greedy: sigma/conflict pairs come from the matching list"
    (instance_gen ()) print_instance (fun t ->
      let cands = Instance.candidates t in
      let r = run_greedy t in
      let in_h (v, u) = Array.mem u cands.(v) in
      List.for_all in_h r.Greedy.sigma && List.for_all in_h r.Greedy.conflict)

let prop_sigma_valid =
  qtest ~count:100 "greedy: one round already yields a valid mapping"
    (instance_gen ()) print_instance (fun t ->
      Instance.is_valid t (run_greedy t).Greedy.sigma)

let prop_conflict_nonempty =
  qtest ~count:100 "greedy: non-empty input gives non-empty conflict set"
    (instance_gen ()) print_instance (fun t ->
      let h = ML.of_candidates (Instance.candidates t) in
      ML.is_empty h || (run_greedy t).Greedy.conflict <> [])

let test_capacity_two () =
  (* three pattern nodes over one target with capacity 2 *)
  let t = eq_instance (graph [ "a"; "a"; "a" ] []) (graph [ "a" ] []) in
  let h = ML.of_candidates (Instance.candidates t) in
  let caps = ML.Int_map.singleton 0 2 in
  let r =
    Greedy.run ~g1:t.Instance.g1 ~tc2:t.Instance.tc2
      ~choose_u:(Instance.choose_best t) ~mode:(`Capacitated caps) h
  in
  Alcotest.(check int) "exactly two placed" 2 (Mapping.size r.Greedy.sigma)

let prop_deterministic =
  qtest ~count:60 "greedy: compMaxCard is deterministic" (instance_gen ())
    print_instance (fun t -> CMC.run t = CMC.run t)

let prop_pick_variants_valid =
  qtest ~count:100 "greedy: both pick heuristics give valid mappings"
    (instance_gen ()) print_instance (fun t ->
      Instance.is_valid t (CMC.run ~pick:`First t)
      && Instance.is_valid ~injective:true t (CMC.run ~injective:true ~pick:`First t))

let suite =
  [
    ( "greedy",
      [
        Alcotest.test_case "empty input" `Quick test_empty;
        Alcotest.test_case "conflict set non-empty" `Quick test_conflict_nonempty;
        Alcotest.test_case "choose_u validation" `Quick test_bad_choose_u_rejected;
        Alcotest.test_case "deep recursion heap-bounded" `Quick
          test_deep_recursion_is_heap_bounded;
        Alcotest.test_case "capacity two" `Quick test_capacity_two;
        prop_deterministic;
        prop_sigma_and_conflict_from_h;
        prop_sigma_valid;
        prop_conflict_nonempty;
        prop_pick_variants_valid;
      ] );
  ]
