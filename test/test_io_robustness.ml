(* Hardened-I/O tests: a corpus of malformed inputs for the graph and
   similarity-matrix parsers (every entry must come back as [Error] with a
   useful message — never an exception, never a silent acceptance), plus
   randomized round-trip properties. *)

open Helpers
module IO = Phom_graph.Graph_io

let check_graph_error name input needle =
  Alcotest.test_case name `Quick (fun () ->
      match IO.of_string input with
      | Ok _ -> Alcotest.failf "%s: parser accepted malformed input" name
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: error %S mentions %S" name msg needle)
            true
            (contains_substring ~needle msg))

let graph_corpus =
  [
    check_graph_error "empty input" "" "header";
    check_graph_error "wrong magic" "phg 2\nnode 0 a\n" "header";
    check_graph_error "duplicate node" "phg 1\nnode 0 a\nnode 1 b\nnode 0 c\n"
      "duplicate node 0";
    check_graph_error "duplicate node line number"
      "phg 1\nnode 0 a\nnode 1 b\nnode 0 c\n" "line 4";
    check_graph_error "sparse node ids" "phg 1\nnode 0 a\nnode 2 b\n" "dense";
    check_graph_error "negative node id" "phg 1\nnode -1 a\n" "dense";
    check_graph_error "bad node id" "phg 1\nnode x a\n" "bad node id";
    check_graph_error "dangling edge id" "phg 1\nnode 0 a\nedge 0 5\n" "";
    check_graph_error "negative edge id" "phg 1\nnode 0 a\nedge 0 -3\n" "";
    check_graph_error "one-endpoint edge" "phg 1\nnode 0 a\nedge 0\n" "bad edge";
    check_graph_error "three-endpoint edge" "phg 1\nnode 0 a\nedge 0 0 0\n" "bad edge";
    check_graph_error "unknown keyword" "phg 1\nvertex 0 a\n" "unknown keyword";
    check_graph_error "keyword only" "phg 1\nnode\n" "malformed";
  ]

let test_graph_crlf () =
  (* Windows line endings parse like Unix ones *)
  match IO.of_string "phg 1\r\nnode 0 a\r\nnode 1 b\r\nedge 0 1\r\n" with
  | Error msg -> Alcotest.failf "CRLF rejected: %s" msg
  | Ok g ->
      Alcotest.(check int) "two nodes" 2 (Phom_graph.Digraph.n g);
      Alcotest.(check string) "label survives trim" "a" (Phom_graph.Digraph.label g 0);
      Alcotest.(check bool) "edge" true (Phom_graph.Digraph.has_edge g 0 1)

let test_graph_size_cap () =
  let big = "phg 1\n" ^ String.concat "\n" (List.init 50 (fun i -> Printf.sprintf "node %d x" i)) in
  (match IO.of_string ~max_bytes:100 big with
  | Ok _ -> Alcotest.fail "size cap ignored"
  | Error msg ->
      Alcotest.(check bool) "mentions the limit" true (contains_substring ~needle:"too large" msg));
  (* the default cap leaves ordinary inputs alone *)
  match IO.of_string big with
  | Ok g -> Alcotest.(check int) "parsed" 50 (Phom_graph.Digraph.n g)
  | Error msg -> Alcotest.failf "default cap rejected ordinary input: %s" msg

let test_graph_load_missing_file () =
  match IO.load "/nonexistent/path/graph.phg" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ()

let test_graph_load_size_cap () =
  let path = Filename.temp_file "phom_io" ".phg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "phg 1\nnode 0 some-label-that-makes-this-long\n";
      close_out oc;
      match IO.load ~max_bytes:10 path with
      | Ok _ -> Alcotest.fail "load ignored max_bytes"
      | Error msg ->
          Alcotest.(check bool)
            "rejected before parsing" true
            (contains_substring ~needle:"too large" msg))

let test_graph_label_with_spaces () =
  let g = graph [ "hello world"; "x y z" ] [ (0, 1) ] in
  match IO.of_string (IO.to_string g) with
  | Ok g' -> Alcotest.(check bool) "round-trips" true (Phom_graph.Digraph.equal g g')
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg

let prop_graph_roundtrip =
  qtest ~count:200 "graph_io: to_string/of_string round-trip" (digraph_gen ~max_n:12 ())
    print_digraph (fun g ->
      match IO.of_string (IO.to_string g) with
      | Ok g' -> Phom_graph.Digraph.equal g g'
      | Error _ -> false)

let prop_graph_save_load_roundtrip =
  qtest ~count:50 "graph_io: save/load round-trip" (digraph_gen ~max_n:10 ())
    print_digraph (fun g ->
      let path = Filename.temp_file "phom_io" ".phg" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          IO.save path g;
          match IO.load path with Ok g' -> Phom_graph.Digraph.equal g g' | Error _ -> false))

(* ---- similarity matrices ---- *)

module Simmat = Phom_sim.Simmat

let check_mat_error name input needle =
  Alcotest.test_case name `Quick (fun () ->
      match Simmat.of_string input with
      | Ok _ -> Alcotest.failf "%s: parser accepted malformed input" name
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: error %S mentions %S" name msg needle)
            true
            (contains_substring ~needle msg))

let mat_corpus =
  [
    check_mat_error "empty input" "" "truncated";
    check_mat_error "header only" "phs 1" "truncated";
    check_mat_error "wrong magic" "psh 1\n1 1\n0.5\n" "header";
    check_mat_error "missing rows" "phs 1\n2 2\n1.0 0.5\n" "missing rows";
    check_mat_error "one dimension" "phs 1\n2\n" "bad dimension";
    check_mat_error "negative dimension" "phs 1\n-3 4\n" "bad dimension";
    check_mat_error "non-numeric dimension" "phs 1\ntwo 2\n" "bad dimension";
    check_mat_error "short row" "phs 1\n1 2\n0.5\n" "expected 2 values";
    check_mat_error "value above 1" "phs 1\n1 1\n1.5\n" "outside [0,1]";
    check_mat_error "negative value" "phs 1\n1 1\n-0.5\n" "outside [0,1]";
    check_mat_error "bad float" "phs 1\n1 1\nabc\n" "bad float";
  ]

let test_mat_size_cap () =
  (* 10⁵ × 10⁵ = 10¹⁰ cells: must fail fast on the dimension line, without
     attempting the 80 GB allocation *)
  match Simmat.of_string "phs 1\n100000 100000\n" with
  | Ok _ -> Alcotest.fail "accepted a 10-billion-cell matrix"
  | Error msg ->
      Alcotest.(check bool)
        "mentions the cell limit" true
        (contains_substring ~needle:"too large" msg)

let test_mat_load_missing_file () =
  match Simmat.load "/nonexistent/path/matrix.phs" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ()

let simmat_gen ?(max_n = 6) () : Simmat.t QCheck.Gen.t =
 fun st ->
  let n1 = 1 + Random.State.int st max_n and n2 = 1 + Random.State.int st max_n in
  Simmat.of_fun ~n1 ~n2 (fun _ _ -> float_of_int (Random.State.int st 101) /. 100.)

let simmat_equal a b =
  Simmat.n1 a = Simmat.n1 b
  && Simmat.n2 a = Simmat.n2 b
  &&
  let ok = ref true in
  for v = 0 to Simmat.n1 a - 1 do
    for u = 0 to Simmat.n2 a - 1 do
      if Float.abs (Simmat.get a v u -. Simmat.get b v u) > 1e-9 then ok := false
    done
  done;
  !ok

let prop_mat_roundtrip =
  qtest ~count:200 "simmat: to_string/of_string round-trip" (simmat_gen ())
    (fun m -> Format.asprintf "%a" Simmat.pp m)
    (fun m ->
      match Simmat.of_string (Simmat.to_string m) with
      | Ok m' -> simmat_equal m m'
      | Error _ -> false)

let suite =
  [
    ( "io_robustness",
      graph_corpus
      @ [
          Alcotest.test_case "CRLF accepted" `Quick test_graph_crlf;
          Alcotest.test_case "size cap (of_string)" `Quick test_graph_size_cap;
          Alcotest.test_case "missing file" `Quick test_graph_load_missing_file;
          Alcotest.test_case "size cap (load)" `Quick test_graph_load_size_cap;
          Alcotest.test_case "labels with spaces" `Quick test_graph_label_with_spaces;
          prop_graph_roundtrip;
          prop_graph_save_load_roundtrip;
        ]
      @ mat_corpus
      @ [
          Alcotest.test_case "matrix size cap" `Quick test_mat_size_cap;
          Alcotest.test_case "matrix missing file" `Quick test_mat_load_missing_file;
          prop_mat_roundtrip;
        ] );
  ]
