(* The domain pool, and the determinism contract of every parallel seam:
   with a pool and no budget trip, results are identical to the sequential
   ones — same order, same mappings, same qualities. *)

open Helpers
module Pool = Phom_parallel.Pool
module Budget = Phom_graph.Budget
module U = Phom_wis.Ungraph
module Wis = Phom_wis.Wis
module G = Phom_graph.Generators
module Api = Phom.Api

(* a shared pool for the whole suite keeps domain spawning off the hot path;
   size 4 oversubscribes small CI machines, which is exactly the contention
   the determinism claims must survive *)
let pool = lazy (Pool.create ~domains:4 ())

let test_create_validation () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  Pool.with_pool ~domains:1 (fun p ->
      Alcotest.(check int) "size 1" 1 (Pool.size p))

let test_map_order () =
  let p = Lazy.force pool in
  let input = Array.init 100 (fun i -> i) in
  let out = Pool.map p (fun i -> i * i) input in
  Alcotest.(check (array int)) "input order" (Array.map (fun i -> i * i) input) out

let test_map_matches_sequential () =
  let p = Lazy.force pool in
  let input = Array.init 257 (fun i -> i) in
  let f i = (i * 7919) mod 1009 in
  Alcotest.(check (array int))
    "same as Array.map" (Array.map f input) (Pool.map p f input)

let test_map_list () =
  let p = Lazy.force pool in
  let xs = List.init 33 (fun i -> i) in
  Alcotest.(check (list int))
    "order kept" (List.map succ xs)
    (Pool.map_list p succ xs)

let test_map_empty_and_singleton () =
  let p = Lazy.force pool in
  Alcotest.(check (array int)) "empty" [||] (Pool.map p succ [||]);
  Alcotest.(check (array int)) "singleton" [| 2 |] (Pool.map p succ [| 1 |])

let test_exception_lowest_index () =
  let p = Lazy.force pool in
  let input = Array.init 64 (fun i -> i) in
  (* indices 10 and 40 both fail; the re-raised exception must be index
     10's, no matter which domain got there first *)
  Alcotest.check_raises "lowest index wins" (Failure "boom 10") (fun () ->
      ignore
        (Pool.map p
           (fun i -> if i = 10 || i = 40 then failwith (Printf.sprintf "boom %d" i) else i)
           input))

let test_nested_map () =
  (* an inner map issued from inside a pool task must complete even with
     every worker busy: batch callers participate in their own batches *)
  let p = Lazy.force pool in
  let out =
    Pool.map p
      (fun i ->
        Array.fold_left ( + ) 0 (Pool.map p (fun j -> (i * 10) + j) (Array.init 8 Fun.id)))
      (Array.init 16 Fun.id)
  in
  let expected =
    Array.init 16 (fun i ->
        Array.fold_left ( + ) 0 (Array.init 8 (fun j -> (i * 10) + j)))
  in
  Alcotest.(check (array int)) "nested results" expected out

let test_both () =
  let p = Lazy.force pool in
  let a, b = Pool.both p (fun () -> 6 * 7) (fun () -> "ok") in
  Alcotest.(check int) "left" 42 a;
  Alcotest.(check string) "right" "ok" b

let test_both_exception () =
  let p = Lazy.force pool in
  Alcotest.check_raises "left failure wins" (Failure "left") (fun () ->
      ignore (Pool.both p (fun () -> failwith "left") (fun () -> failwith "right")))

let test_reuse_after_batches () =
  let p = Lazy.force pool in
  for round = 1 to 20 do
    let out = Pool.map p succ (Array.init (round * 3) Fun.id) in
    Alcotest.(check int) "batch size" (round * 3) (Array.length out)
  done

let test_shutdown_degenerates () =
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.(check (array int)) "still maps" [| 1; 2 |] (Pool.map p succ [| 0; 1 |])

(* ---- seam determinism: parallel ≡ sequential ---- *)

let random_ungraph seed n prob =
  let rng = Random.State.make [| seed |] in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < prob then edges := (u, v) :: !edges
    done
  done;
  let weights = Array.init n (fun i -> float_of_int (1 + (i mod 7))) in
  U.create ~weights n !edges

let test_wis_parallel_equals_sequential () =
  let p = Lazy.force pool in
  List.iter
    (fun seed ->
      let g = random_ungraph seed 40 0.2 in
      Alcotest.(check (list int))
        (Printf.sprintf "max_clique seed %d" seed)
        (Wis.max_clique g) (Wis.max_clique ~pool:p g);
      Alcotest.(check (list int))
        (Printf.sprintf "max_independent_set seed %d" seed)
        (Wis.max_independent_set g)
        (Wis.max_independent_set ~pool:p g);
      Alcotest.(check (list int))
        (Printf.sprintf "max_weight_independent_set seed %d" seed)
        (Wis.max_weight_independent_set g)
        (Wis.max_weight_independent_set ~pool:p g);
      Alcotest.(check (list int))
        (Printf.sprintf "max_weight_clique seed %d" seed)
        (Wis.max_weight_clique g)
        (Wis.max_weight_clique ~pool:p g))
    [ 3; 17; 99 ]

(* a disconnected pattern: the partition seam fans its components out *)
let multi_component_instance seed =
  let rng = Random.State.make [| seed |] in
  let g0, lpool = G.paper_pattern ~rng ~m:12 in
  let patterns =
    g0
    :: List.init 3 (fun _ ->
           G.erdos_renyi ~rng ~n:12 ~m:48 ~labels:(fun _ ->
               G.label_name (Random.State.int rng lpool.G.nlabels)))
  in
  let datas = List.map (G.paper_data ~rng ~pool:lpool ~noise:0.1) patterns in
  let union gs =
    let labels =
      Array.concat
        (List.map (fun g -> Array.init (D.n g) (D.label g)) gs)
    in
    let _, edges =
      List.fold_left
        (fun (off, acc) g ->
          ( off + D.n g,
            List.rev_append
              (List.map (fun (v, w) -> (v + off, w + off)) (D.edges g))
              acc ))
        (0, []) gs
    in
    D.make ~labels ~edges
  in
  let g1 = union patterns and g2 = union datas in
  let lsim = Phom_sim.Labelsim.make ~pool:lpool ~seed in
  Instance.make ~g1 ~g2 ~mat:(Phom_sim.Labelsim.matrix lsim g1 g2) ~xi:0.75 ()

let test_partition_parallel_equals_sequential () =
  let p = Lazy.force pool in
  List.iter
    (fun seed ->
      let t = multi_component_instance seed in
      List.iter
        (fun problem ->
          let seq = Api.solve_within ~partition:true problem t in
          let par = Api.solve_within ~partition:true ~pool:p problem t in
          check_valid t par.Api.mapping;
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "quality seed %d" seed)
            seq.Api.quality par.Api.quality;
          Alcotest.(check bool)
            (Printf.sprintf "same mapping seed %d" seed)
            true
            (seq.Api.mapping = par.Api.mapping))
        [ Api.CPH; Api.SPH ])
    [ 11; 42 ]

let test_matcher_parallel_equals_sequential () =
  let p = Lazy.force pool in
  let rng = Random.State.make [| 5 |] in
  let spec = List.hd (Phom_web.Dataset.sites (Phom_web.Dataset.Reduced 20)) in
  let pattern, versions =
    Phom_web.Dataset.archive_skeletons ~rng ~versions:5 ~skeleton:(`Alpha 0.2) spec
  in
  List.iter
    (fun m ->
      let seq, _ = Phom_web.Matcher.accuracy m ~pattern ~versions in
      let par, _ = Phom_web.Matcher.accuracy ~pool:p m ~pattern ~versions in
      Alcotest.(check bool)
        (Phom_web.Matcher.method_name m)
        true (seq = par))
    [ Phom_web.Matcher.CompMaxCard; Phom_web.Matcher.CompMaxSim11;
      Phom_web.Matcher.GraphSimulation ]

let suite =
  [
    ( "pool",
      [
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "map keeps input order" `Quick test_map_order;
        Alcotest.test_case "map matches Array.map" `Quick test_map_matches_sequential;
        Alcotest.test_case "map_list" `Quick test_map_list;
        Alcotest.test_case "empty and singleton batches" `Quick test_map_empty_and_singleton;
        Alcotest.test_case "lowest-index exception wins" `Quick test_exception_lowest_index;
        Alcotest.test_case "nested map" `Quick test_nested_map;
        Alcotest.test_case "both" `Quick test_both;
        Alcotest.test_case "both: left exception wins" `Quick test_both_exception;
        Alcotest.test_case "reuse across batches" `Quick test_reuse_after_batches;
        Alcotest.test_case "shutdown degenerates to sequential" `Quick test_shutdown_degenerates;
      ] );
    ( "parallel_seams",
      [
        Alcotest.test_case "wis: pool ≡ sequential" `Quick test_wis_parallel_equals_sequential;
        Alcotest.test_case "partition: pool ≡ sequential" `Quick
          test_partition_parallel_equals_sequential;
        Alcotest.test_case "matcher: pool ≡ sequential" `Quick
          test_matcher_parallel_equals_sequential;
      ] );
  ]
