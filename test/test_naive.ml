open Helpers
module Naive = Phom.Naive
module CMC = Phom.Comp_max_card

let test_simple () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let t = eq_instance g1 g2 in
  check_mapping "full mapping" [ (0, 0); (1, 2) ] (Naive.max_card t)

let test_weighted_preference () =
  (* two pattern nodes, one target: the weighted clique keeps the heavy one *)
  let g1 = graph [ "a"; "a" ] [] and g2 = graph [ "a" ] [] in
  let t = eq_instance g1 g2 in
  let m = Naive.max_sim ~injective:true ~weights:[| 1.; 7. |] t in
  check_mapping "heavy node wins" [ (1, 0) ] m

let prop_valid =
  qtest ~count:150 "naive: outputs valid mappings (all four problems)"
    (instance_gen ~max_n1:5 ~max_n2:6 ()) print_instance (fun t ->
      let w = Array.init (D.n t.g1) (fun i -> float_of_int (1 + (i mod 3))) in
      Instance.is_valid t (Naive.max_card t)
      && Instance.is_valid ~injective:true t (Naive.max_card ~injective:true t)
      && Instance.is_valid t (Naive.max_sim ~weights:w t)
      && Instance.is_valid ~injective:true t (Naive.max_sim ~injective:true ~weights:w t))

let prop_bounded_by_exact =
  qtest ~count:100 "naive: ≤ exact optimum" (instance_gen ~max_n1:5 ~max_n2:6 ())
    print_instance (fun t ->
      let e = Phom.Exact.solve ~objective:Phom.Exact.Cardinality t in
      (e.Phom.Exact.status <> Phom_graph.Budget.Complete)
      || Instance.qual_card t (Naive.max_card t)
         <= Instance.qual_card t e.Phom.Exact.mapping +. 1e-9)

let prop_comparable_to_direct =
  (* both are heuristics; we only require both to be valid and to agree on
     "is there anything to find at all" *)
  qtest ~count:100 "naive vs direct: agree on emptiness"
    (instance_gen ~max_n1:5 ~max_n2:6 ()) print_instance (fun t ->
      let a = Naive.max_card t and b = CMC.run t in
      (a = []) = (b = []))

let suite =
  [
    ( "naive",
      [
        Alcotest.test_case "edge-to-path via product" `Quick test_simple;
        Alcotest.test_case "weighted preference" `Quick test_weighted_preference;
        prop_valid;
        prop_bounded_by_exact;
        prop_comparable_to_direct;
      ] );
  ]
