open Helpers
module Scc = Phom_graph.Scc

let two_cycles () =
  (* 0↔1 → 2↔3, plus isolated 4 *)
  graph [ "a"; "b"; "c"; "d"; "e" ]
    [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ]

let test_components () =
  let g = two_cycles () in
  let scc = Scc.compute g in
  Alcotest.(check int) "count" 3 scc.Scc.count;
  Alcotest.(check bool) "0 and 1 together" true (scc.Scc.comp.(0) = scc.Scc.comp.(1));
  Alcotest.(check bool) "2 and 3 together" true (scc.Scc.comp.(2) = scc.Scc.comp.(3));
  Alcotest.(check bool) "separate" true (scc.Scc.comp.(0) <> scc.Scc.comp.(2));
  (* reverse topological numbering: the 0-1 component points at the 2-3
     component, so it gets the larger id *)
  Alcotest.(check bool) "reverse topo ids" true
    (scc.Scc.comp.(0) > scc.Scc.comp.(2))

let test_members_sizes () =
  let g = two_cycles () in
  let scc = Scc.compute g in
  let members = Scc.members scc in
  Alcotest.(check (list int)) "members of comp of 0" [ 0; 1 ]
    members.(scc.Scc.comp.(0));
  Alcotest.(check int) "sizes sum" 5
    (Array.fold_left ( + ) 0 (Scc.sizes scc))

let test_trivial () =
  let g = graph [ "a"; "b" ] [ (0, 0); (0, 1) ] in
  let scc = Scc.compute g in
  Alcotest.(check bool) "self loop not trivial" false
    (Scc.is_trivial g scc scc.Scc.comp.(0));
  Alcotest.(check bool) "plain node trivial" true
    (Scc.is_trivial g scc scc.Scc.comp.(1))

let test_condensation_edges () =
  let g = two_cycles () in
  let scc = Scc.compute g in
  let edges = Scc.condensation_edges g scc in
  Alcotest.(check int) "one cross edge" 1 (List.length edges);
  let c01 = scc.Scc.comp.(0) and c23 = scc.Scc.comp.(2) in
  Alcotest.(check (list (pair int int))) "direction" [ (c01, c23) ] edges

let test_deep_path_no_stack_overflow () =
  let n = 200_000 in
  let g =
    D.make
      ~labels:(Array.make n "x")
      ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))
  in
  let scc = Scc.compute g in
  Alcotest.(check int) "all singletons" n scc.Scc.count

let prop_mutual_reachability =
  qtest ~count:60 "scc: same component iff mutually reachable" (digraph_gen ())
    print_digraph (fun g ->
      let scc = Scc.compute g in
      let module T = Phom_graph.Traversal in
      let reach = Array.init (D.n g) (fun v -> T.reachable g v) in
      let ok = ref true in
      for u = 0 to D.n g - 1 do
        for v = 0 to D.n g - 1 do
          let together = scc.Scc.comp.(u) = scc.Scc.comp.(v) in
          let mutual = Bitset.mem reach.(u) v && Bitset.mem reach.(v) u in
          if together <> mutual then ok := false
        done
      done;
      !ok)

let prop_edge_numbering =
  qtest ~count:60 "scc: cross edges go to smaller ids" (digraph_gen ())
    print_digraph (fun g ->
      let scc = Scc.compute g in
      D.fold_edges
        (fun u v acc ->
          acc
          && (scc.Scc.comp.(u) = scc.Scc.comp.(v) || scc.Scc.comp.(u) > scc.Scc.comp.(v)))
        g true)

let suite =
  [
    ( "scc",
      [
        Alcotest.test_case "two cycles" `Quick test_components;
        Alcotest.test_case "members and sizes" `Quick test_members_sizes;
        Alcotest.test_case "triviality" `Quick test_trivial;
        Alcotest.test_case "condensation edges" `Quick test_condensation_edges;
        Alcotest.test_case "200k-node path (iterative Tarjan)" `Quick
          test_deep_path_no_stack_overflow;
        prop_mutual_reachability;
        prop_edge_numbering;
      ] );
  ]
