open! Helpers
module ML = Phom.Matching_list

let ml cands = ML.of_candidates (Array.of_list (List.map Array.of_list cands))

let test_of_candidates () =
  let h = ml [ [ 1; 2 ]; []; [ 3 ] ] in
  Alcotest.(check int) "size skips empty rows" 2 (ML.size h);
  Alcotest.(check bool) "node 1 absent" false (ML.mem h 1);
  Alcotest.(check (list int)) "good 0" [ 1; 2 ] (ML.Int_set.elements (ML.good h 0));
  Alcotest.(check int) "pairs" 3 (ML.nb_pairs h)

let test_pick_max_good () =
  let h = ml [ [ 1 ]; [ 1; 2; 3 ]; [ 1; 2 ] ] in
  match ML.pick h with
  | Some (v, goods) ->
      Alcotest.(check int) "largest good" 1 v;
      Alcotest.(check int) "its size" 3 (ML.Int_set.cardinal goods)
  | None -> Alcotest.fail "expected a pick"

let test_move_to_minus_and_split () =
  let h = ml [ [ 1; 2 ]; [ 3 ] ] in
  let h = ML.move_to_minus h 0 (fun u -> u = 2) in
  Alcotest.(check (list int)) "good" [ 1 ] (ML.Int_set.elements (ML.good h 0));
  Alcotest.(check (list int)) "minus" [ 2 ] (ML.Int_set.elements (ML.minus h 0));
  let hplus, hminus = ML.split h in
  Alcotest.(check int) "H+ has both nodes" 2 (ML.size hplus);
  Alcotest.(check int) "H- has node 0 only" 1 (ML.size hminus);
  Alcotest.(check (list int)) "H- promotes minus" [ 2 ]
    (ML.Int_set.elements (ML.good hminus 0));
  Alcotest.(check (list int)) "H- minus reset" []
    (ML.Int_set.elements (ML.minus hminus 0))

let test_remove_pairs () =
  let h = ml [ [ 1; 2 ]; [ 3 ] ] in
  let h = ML.remove_pairs h [ (0, 1); (1, 3) ] in
  Alcotest.(check int) "node 1 dropped when exhausted" 1 (ML.size h);
  Alcotest.(check (list int)) "pair removed" [ 2 ]
    (ML.Int_set.elements (ML.good h 0))

let test_set_good_drops_empty () =
  let h = ml [ [ 1 ] ] in
  let h = ML.set_good h 0 ML.Int_set.empty in
  Alcotest.(check bool) "dropped" true (ML.is_empty h)

let test_pick_none_when_all_minus () =
  let h = ml [ [ 1 ] ] in
  let h = ML.move_to_minus h 0 (fun _ -> true) in
  Alcotest.(check bool) "still present" true (ML.mem h 0);
  Alcotest.(check bool) "no pick" true (ML.pick h = None)

let suite =
  [
    ( "matching_list",
      [
        Alcotest.test_case "of_candidates" `Quick test_of_candidates;
        Alcotest.test_case "pick = max good" `Quick test_pick_max_good;
        Alcotest.test_case "move_to_minus and split" `Quick
          test_move_to_minus_and_split;
        Alcotest.test_case "remove_pairs" `Quick test_remove_pairs;
        Alcotest.test_case "empty entries dropped" `Quick test_set_good_drops_empty;
        Alcotest.test_case "pick on all-minus lists" `Quick
          test_pick_none_when_all_minus;
      ] );
  ]
