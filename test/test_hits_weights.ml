open Helpers
module Hits = Phom_sim.Hits
module Weights = Phom.Weights

let star_out n =
  (* node 0 points at everyone: the hub *)
  graph (List.init (n + 1) (fun i -> "n" ^ string_of_int i))
    (List.init n (fun i -> (0, i + 1)))

let test_hub_of_star () =
  let g = star_out 5 in
  let s = Hits.compute g in
  for v = 1 to 5 do
    Alcotest.(check bool) "centre is the hub" true (s.Hits.hub.(0) > s.Hits.hub.(v));
    Alcotest.(check bool) "leaves are authorities" true
      (s.Hits.authority.(v) > s.Hits.authority.(0))
  done

let test_empty_and_edgeless () =
  let s = Hits.compute (graph [] []) in
  Alcotest.(check int) "empty" 0 (Array.length s.Hits.hub);
  let s2 = Hits.compute (graph [ "a"; "b" ] []) in
  Alcotest.(check bool) "edgeless uniform" true
    (s2.Hits.hub.(0) = s2.Hits.hub.(1) && s2.Hits.hub.(0) > 0.)

let test_role_similarity () =
  let g1 = star_out 4 and g2 = star_out 6 in
  let m = Hits.role_similarity (Hits.compute g1) (Hits.compute g2) in
  (* hub should be most similar to hub *)
  Alcotest.(check bool) "hub-hub beats hub-leaf" true
    (Simmat.get m 0 0 > Simmat.get m 0 1)

let test_weights () =
  let g = star_out 4 in
  Alcotest.(check (float 1e-9)) "uniform" 1.0 (Weights.uniform g).(3);
  let d = Weights.degree g in
  Alcotest.(check (float 1e-9)) "hub degree weight" 1.0 d.(0);
  Alcotest.(check bool) "leaf lighter" true (d.(1) < 1.0);
  let h = Weights.hub g in
  Alcotest.(check (float 1e-9)) "hub weight max" 1.0 h.(0);
  let a = Weights.authority g in
  Alcotest.(check bool) "leaf is the authority" true (a.(1) > a.(0));
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.)) a

let test_weights_drive_sph () =
  (* same instance as the Example-3.3-style conflict but weights from degree:
     the hub must win the single target *)
  let g1 = star_out 2 in
  (* two nodes of g1 compete for one target u: centre (hub) and a leaf *)
  let g2 = graph [ "n0" ] [] in
  let mat = Simmat.of_fun ~n1:3 ~n2:1 (fun _ _ -> 1.0) in
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let w = Weights.degree g1 in
  let m = Phom.Comp_max_sim.run ~injective:true ~weights:w t in
  check_mapping "hub takes the target" [ (0, 0) ] m

let prop_scores_in_range =
  qtest ~count:60 "hits: scores in [0,1]" (digraph_gen ()) print_digraph
    (fun g ->
      let s = Hits.compute g in
      Array.for_all (fun x -> x >= 0. && x <= 1.) s.Hits.hub
      && Array.for_all (fun x -> x >= 0. && x <= 1.) s.Hits.authority)

let suite =
  [
    ( "hits_weights",
      [
        Alcotest.test_case "hub/authority of a star" `Quick test_hub_of_star;
        Alcotest.test_case "degenerate graphs" `Quick test_empty_and_edgeless;
        Alcotest.test_case "role similarity" `Quick test_role_similarity;
        Alcotest.test_case "weight vectors" `Quick test_weights;
        Alcotest.test_case "weights drive SPH" `Quick test_weights_drive_sph;
        prop_scores_in_range;
      ] );
  ]
