(* The replica router in isolation: consistent-hash stability under
   replica add/remove, circuit-breaker transitions under scripted fault
   schedules, per-endpoint busy gates, drain-abort failover and the load
   replay log — all over a fake transport and a virtual clock, no
   sockets. *)

module Router = Phom_server.Router

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_or_fail = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let breaker =
  Alcotest.of_pp (fun ppf s ->
      Fmt.string ppf
        (match s with
        | Router.Closed -> "Closed"
        | Router.Open -> "Open"
        | Router.Half_open -> "Half_open"))

(* ---- placement ---- *)

let keys n = List.init n (fun i -> Router.solve_key ~g1:(Printf.sprintf "g%d" i) ~g2:"store")

let test_placement_deterministic () =
  let endpoints = [ "a:1"; "b:1"; "c:1" ] in
  List.iter
    (fun key ->
      let o1 = Router.owner ~endpoints ~key () in
      let o2 = Router.owner ~endpoints ~key () in
      Alcotest.(check (option string)) "same owner twice" o1 o2;
      check_bool "owner is an endpoint" true
        (match o1 with Some o -> List.mem o endpoints | None -> false))
    (keys 100)

let test_placement_spreads () =
  let endpoints = [ "a:1"; "b:1"; "c:1"; "d:1"; "e:1" ] in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun key ->
      match Router.owner ~endpoints ~key () with
      | Some o ->
          Hashtbl.replace tally o (1 + Option.value ~default:0 (Hashtbl.find_opt tally o))
      | None -> Alcotest.fail "no owner")
    (keys 1000);
  (* 1000 keys over 5 replicas: every replica owns a meaningful share *)
  List.iter
    (fun e ->
      let n = Option.value ~default:0 (Hashtbl.find_opt tally e) in
      if n < 50 then
        Alcotest.failf "replica %s owns only %d/1000 keys (ring too lumpy)" e n)
    endpoints

(* the consistent-hashing contract: removing a replica moves only the keys
   it owned; adding one moves keys only *to* it *)
let test_bounded_movement_on_remove () =
  let all = [ "a:1"; "b:1"; "c:1"; "d:1"; "e:1" ] in
  let without = [ "a:1"; "b:1"; "c:1"; "d:1" ] in
  let moved = ref 0 in
  List.iter
    (fun key ->
      let before = Option.get (Router.owner ~endpoints:all ~key ()) in
      let after = Option.get (Router.owner ~endpoints:without ~key ()) in
      if before = "e:1" then incr moved
      else check_str "survivor keys stay put" before after)
    (keys 1000);
  (* ~1/5 of the keys lived on the removed replica *)
  if !moved < 100 || !moved > 320 then
    Alcotest.failf "removed replica owned %d/1000 keys (expected ~200)" !moved

let test_bounded_movement_on_add () =
  let before_eps = [ "a:1"; "b:1"; "c:1"; "d:1" ] in
  let after_eps = [ "a:1"; "b:1"; "c:1"; "d:1"; "e:1" ] in
  List.iter
    (fun key ->
      let before = Option.get (Router.owner ~endpoints:before_eps ~key ()) in
      let after = Option.get (Router.owner ~endpoints:after_eps ~key ()) in
      if after <> before then
        check_str "movement only towards the new replica" "e:1" after)
    (keys 1000)

let test_preference_order_complete () =
  let endpoints = [ "a:1"; "b:1"; "c:1" ] in
  let r =
    ok_or_fail
      (Router.create ~transport:(fun _ _ -> Ok "ok pong") ~endpoints ())
  in
  List.iter
    (fun key ->
      let order = Router.place r ~key in
      check_int "order covers every endpoint" 3 (List.length order);
      check_int "no duplicates" 3
        (List.length (List.sort_uniq compare order));
      check_str "head of order is the owner"
        (Option.get (Router.owner ~endpoints ~key ()))
        (List.hd order))
    (keys 50)

(* ---- a scripted fleet: fake transport + virtual clock ---- *)

type fake = {
  log : (string * string) list ref;  (* (endpoint, line), oldest first *)
  behavior : (string, string -> (string, string) result) Hashtbl.t;
  clock : float ref;
}

let make_fake endpoints =
  let f =
    { log = ref []; behavior = Hashtbl.create 4; clock = ref 0. }
  in
  List.iter
    (fun e -> Hashtbl.replace f.behavior e (fun _ -> Ok "ok pong")) endpoints;
  f

let healthy_daemon reply line =
  if line = "health" then
    Ok "ok health state=ready persist=false requests=0"
  else Ok reply

let dead _line = Error "connection refused"

let router_over ?(config = { Router.default_config with cooldown = 1. }) fake
    endpoints =
  let transport ep line =
    fake.log := (ep, line) :: !(fake.log);
    (Hashtbl.find fake.behavior ep) line
  in
  ok_or_fail
    (Router.create ~config ~transport
       ~now:(fun () -> !(fake.clock))
       ~sleep:(fun d -> fake.clock := !(fake.clock) +. d)
       ~endpoints ())

let calls_to fake ep = List.length (List.filter (fun (e, _) -> e = ep) !(fake.log))

(* a solve line whose (g1, g2) key is owned by [name] *)
let line_owned_by endpoints name =
  let rec go i =
    if i > 10_000 then Alcotest.failf "no key owned by %s" name
    else
      let g1 = Printf.sprintf "g%d" i in
      if Router.owner ~endpoints ~key:(Router.solve_key ~g1 ~g2:"store") ()
         = Some name
      then Printf.sprintf "solve card %s store" g1
      else go (i + 1)
  in
  go 0

let test_breaker_opens_and_fails_over () =
  let endpoints = [ "a:1"; "b:1" ] in
  let fake = make_fake endpoints in
  Hashtbl.replace fake.behavior "a:1" dead;
  Hashtbl.replace fake.behavior "b:1"
    (healthy_daemon "ok mapping size=1 status=complete");
  let r = router_over fake endpoints in
  let line = line_owned_by endpoints "a:1" in
  (* threshold is 3: each request burns one failure on the owner, fails
     over, and still gets b's answer *)
  for i = 1 to 3 do
    check_str
      (Printf.sprintf "request %d answered by the survivor" i)
      "ok mapping size=1 status=complete"
      (ok_or_fail (Router.request r line))
  done;
  Alcotest.check breaker "breaker open after 3 consecutive failures"
    Router.Open
    (Router.breaker_state r "a:1");
  check_int "three failovers counted" 3 (Router.failovers r);
  check_int "one trip" 1 (Router.breaker_trips r);
  let before = calls_to fake "a:1" in
  check_str "open breaker short-circuits the owner"
    "ok mapping size=1 status=complete"
    (ok_or_fail (Router.request r line));
  check_int "no dial to the open endpoint" before (calls_to fake "a:1")

let test_breaker_half_open_recovers () =
  let endpoints = [ "a:1"; "b:1" ] in
  let fake = make_fake endpoints in
  Hashtbl.replace fake.behavior "a:1" dead;
  Hashtbl.replace fake.behavior "b:1" (healthy_daemon "ok from-b");
  let r = router_over fake endpoints in
  let line = line_owned_by endpoints "a:1" in
  for _ = 1 to 3 do
    ignore (ok_or_fail (Router.request r line))
  done;
  Alcotest.check breaker "open" Router.Open (Router.breaker_state r "a:1");
  (* the replica comes back; after the cooldown the next request half-opens
     the breaker with a health probe and the owner serves again *)
  Hashtbl.replace fake.behavior "a:1" (healthy_daemon "ok from-a");
  fake.clock := !(fake.clock) +. 1.5;
  Alcotest.check breaker "due for probe" Router.Half_open
    (Router.breaker_state r "a:1");
  check_str "owner serves after recovery" "ok from-a"
    (ok_or_fail (Router.request r line));
  Alcotest.check breaker "closed again" Router.Closed
    (Router.breaker_state r "a:1");
  check_bool "health probe was sent"
    true
    (List.mem ("a:1", "health") !(fake.log))

let test_breaker_cooldown_backs_off () =
  let endpoints = [ "a:1"; "b:1" ] in
  let fake = make_fake endpoints in
  Hashtbl.replace fake.behavior "a:1" dead;
  Hashtbl.replace fake.behavior "b:1" (healthy_daemon "ok from-b");
  let r = router_over fake endpoints in
  let line = line_owned_by endpoints "a:1" in
  for _ = 1 to 3 do
    ignore (ok_or_fail (Router.request r line))
  done;
  (* first cooldown: 1 s. Let it elapse; the probe fails (a still dead),
     re-opening with a doubled cooldown *)
  fake.clock := !(fake.clock) +. 1.1;
  ignore (ok_or_fail (Router.request r line));
  Alcotest.check breaker "re-opened by the failed probe" Router.Open
    (Router.breaker_state r "a:1");
  check_int "re-trip counted" 2 (Router.breaker_trips r);
  (* the original cooldown is no longer enough... *)
  fake.clock := !(fake.clock) +. 1.1;
  Alcotest.check breaker "still open after 1s" Router.Open
    (Router.breaker_state r "a:1");
  (* ...the doubled one is *)
  fake.clock := !(fake.clock) +. 1.;
  Alcotest.check breaker "due again after 2s" Router.Half_open
    (Router.breaker_state r "a:1")

let test_busy_gates_are_per_endpoint () =
  let endpoints = [ "a:1"; "b:1" ] in
  let fake = make_fake endpoints in
  Hashtbl.replace fake.behavior "a:1" (fun _ ->
      Ok "error busy retry-after=5");
  Hashtbl.replace fake.behavior "b:1" (healthy_daemon "ok from-b");
  let r = router_over fake endpoints in
  let line = line_owned_by endpoints "a:1" in
  check_str "busy owner fails over immediately" "ok from-b"
    (ok_or_fail (Router.request r line));
  Alcotest.check breaker "busy is not a failure" Router.Closed
    (Router.breaker_state r "a:1");
  let before = calls_to fake "a:1" in
  check_str "gated owner is skipped without a dial" "ok from-b"
    (ok_or_fail (Router.request r line));
  check_int "no dial during the gate" before (calls_to fake "a:1");
  (* the gate expires on the replica's own schedule *)
  Hashtbl.replace fake.behavior "a:1" (healthy_daemon "ok from-a");
  fake.clock := !(fake.clock) +. 5.1;
  check_str "owner serves after its hint" "ok from-a"
    (ok_or_fail (Router.request r line))

let test_all_busy_honors_earliest_gate () =
  let endpoints = [ "a:1"; "b:1" ] in
  let fake = make_fake endpoints in
  (* both replicas shed until their own hint elapses on the virtual clock
     (which advances only through the router's sleep): the router must
     sleep out the *earliest* gate and then succeed — not give up, and not
     wait for the later one *)
  Hashtbl.replace fake.behavior "a:1" (fun l ->
      if !(fake.clock) >= 3. then healthy_daemon "ok from-a" l
      else Ok "error busy retry-after=3");
  Hashtbl.replace fake.behavior "b:1" (fun l ->
      if !(fake.clock) >= 7. then healthy_daemon "ok from-b" l
      else Ok "error busy retry-after=7");
  let r = router_over fake endpoints in
  let line = line_owned_by endpoints "a:1" in
  check_str "served after the earliest gate" "ok from-a"
    (ok_or_fail (Router.request r line));
  let waited = !(fake.clock) in
  if waited < 3. || waited >= 7. then
    Alcotest.failf "router waited %gs; expected the earliest gate (3s)" waited

let test_drain_abort_reruns_elsewhere () =
  let endpoints = [ "a:1"; "b:1" ] in
  let fake = make_fake endpoints in
  Hashtbl.replace fake.behavior "a:1" (fun _ ->
      Ok "ok mapping size=0 status=exhausted(cancelled)");
  Hashtbl.replace fake.behavior "b:1"
    (healthy_daemon "ok mapping size=2 status=complete");
  let r = router_over fake endpoints in
  let line = line_owned_by endpoints "a:1" in
  check_str "drain abort is not an answer"
    "ok mapping size=2 status=complete"
    (ok_or_fail (Router.request r line));
  check_int "counted as a failover" 1 (Router.failovers r);
  (* honest exhaustion IS an answer: no failover, no retry *)
  Hashtbl.replace fake.behavior "a:1" (fun _ ->
      Ok "ok mapping size=1 status=exhausted(timeout)");
  check_str "honest exhaustion passes through"
    "ok mapping size=1 status=exhausted(timeout)"
    (ok_or_fail (Router.request r line))

let test_load_broadcast_and_replay () =
  let endpoints = [ "a:1"; "b:1" ] in
  let fake = make_fake endpoints in
  let loaded = Ok "ok loaded graph pat nodes=4 edges=3" in
  Hashtbl.replace fake.behavior "a:1" (fun l ->
      if l = "health" then Ok "ok health state=ready" else loaded);
  Hashtbl.replace fake.behavior "b:1" (fun l ->
      if l = "health" then Ok "ok health state=ready" else loaded);
  let r = router_over fake endpoints in
  check_str "load answered" "ok loaded graph pat nodes=4 edges=3"
    (ok_or_fail (Router.request r "load graph pat pat.phg"));
  check_int "broadcast reached a" 1 (calls_to fake "a:1");
  check_int "broadcast reached b" 1 (calls_to fake "b:1");
  (* a dies; subsequent loads reach only b but stay in the replay log *)
  Hashtbl.replace fake.behavior "a:1" dead;
  for _ = 1 to 3 do
    ignore (Router.request r "load graph store store.phg")
  done;
  Alcotest.check breaker "a tripped" Router.Open (Router.breaker_state r "a:1");
  (* a comes back empty-handed; the next request replays both loads *)
  let replayed = ref [] in
  Hashtbl.replace fake.behavior "a:1" (fun l ->
      if l = "health" then Ok "ok health state=ready"
      else begin
        replayed := l :: !replayed;
        loaded
      end);
  fake.clock := !(fake.clock) +. 2.;
  (* drive a request through a's placement so the half-open probe fires *)
  ignore (ok_or_fail (Router.request r (line_owned_by endpoints "a:1")));
  check_bool "pat replayed" true (List.mem "load graph pat pat.phg" !replayed);
  check_bool "store replayed" true
    (List.mem "load graph store store.phg" !replayed);
  check_int "replays counted" 2 (Router.replays r);
  Alcotest.check breaker "a back in service" Router.Closed
    (Router.breaker_state r "a:1")

let test_replay_refusal_is_counted () =
  let endpoints = [ "a:1"; "b:1" ] in
  let fake = make_fake endpoints in
  let loaded = Ok "ok loaded graph pat nodes=4 edges=3" in
  Hashtbl.replace fake.behavior "b:1" (fun l ->
      if l = "health" then Ok "ok health state=ready" else loaded);
  Hashtbl.replace fake.behavior "a:1" (fun l ->
      if l = "health" then Ok "ok health state=ready" else loaded);
  let r = router_over fake endpoints in
  ignore (ok_or_fail (Router.request r "load graph pat pat.phg"));
  let owned = line_owned_by endpoints "a:1" in
  Hashtbl.replace fake.behavior "a:1" dead;
  for _ = 1 to 3 do
    ignore (Router.request r owned)
  done;
  Alcotest.check breaker "a tripped" Router.Open (Router.breaker_state r "a:1");
  (* the durable replica restarts with *different* content behind the same
     name: the content-CRC load refuses the replay, the router counts it,
     and the replica still rejoins *)
  Hashtbl.replace fake.behavior "a:1" (fun l ->
      if l = "health" then Ok "ok health state=ready"
      else Ok "error name pat is already loaded (unload it first)");
  fake.clock := !(fake.clock) +. 2.;
  ignore (ok_or_fail (Router.request r owned));
  check_int "refused replay counted" 1 (Router.replays_refused r);
  Alcotest.check breaker "replica rejoins anyway" Router.Closed
    (Router.breaker_state r "a:1")

let test_unload_prunes_replay_log () =
  let endpoints = [ "a:1" ] in
  let fake = make_fake endpoints in
  Hashtbl.replace fake.behavior "a:1" (fun l ->
      if l = "health" then Ok "ok health state=ready"
      else if String.length l >= 4 && String.sub l 0 4 = "load" then
        Ok "ok loaded graph pat nodes=4 edges=3"
      else if String.length l >= 6 && String.sub l 0 6 = "unload" then
        Ok "ok unloaded pat artifacts=0"
      else Ok "ok pong");
  let r = router_over fake endpoints in
  ignore (ok_or_fail (Router.request r "load graph pat pat.phg"));
  ignore (ok_or_fail (Router.request r "unload pat"));
  (* trip and recover; nothing should be replayed *)
  Hashtbl.replace fake.behavior "a:1" dead;
  for _ = 1 to 3 do
    ignore (Router.request r "ping")
  done;
  let replayed = ref [] in
  Hashtbl.replace fake.behavior "a:1" (fun l ->
      if l = "health" then Ok "ok health state=ready"
      else begin
        replayed := l :: !replayed;
        Ok "ok pong"
      end);
  fake.clock := !(fake.clock) +. 2.;
  ignore (ok_or_fail (Router.request r "ping"));
  check_bool "unloaded name not replayed" false
    (List.exists
       (fun l -> String.length l >= 4 && String.sub l 0 4 = "load")
       !replayed)

let test_create_rejects_bad_sets () =
  check_bool "empty set refused" true
    (Result.is_error (Router.create ~endpoints:[] ()));
  check_bool "duplicate refused" true
    (Result.is_error (Router.create ~endpoints:[ "a:1"; "a:1" ] ()));
  check_bool "out-of-range port refused" true
    (Result.is_error (Router.create ~endpoints:[ "a:99999" ] ()))

let suite =
  [
    ( "router",
      [
        Alcotest.test_case "placement deterministic" `Quick
          test_placement_deterministic;
        Alcotest.test_case "placement spreads" `Quick test_placement_spreads;
        Alcotest.test_case "bounded movement on remove" `Quick
          test_bounded_movement_on_remove;
        Alcotest.test_case "bounded movement on add" `Quick
          test_bounded_movement_on_add;
        Alcotest.test_case "preference order complete" `Quick
          test_preference_order_complete;
        Alcotest.test_case "breaker opens and fails over" `Quick
          test_breaker_opens_and_fails_over;
        Alcotest.test_case "breaker half-open recovery" `Quick
          test_breaker_half_open_recovers;
        Alcotest.test_case "breaker cooldown backs off" `Quick
          test_breaker_cooldown_backs_off;
        Alcotest.test_case "busy gates are per-endpoint" `Quick
          test_busy_gates_are_per_endpoint;
        Alcotest.test_case "all-busy honors earliest gate" `Quick
          test_all_busy_honors_earliest_gate;
        Alcotest.test_case "drain abort re-runs elsewhere" `Quick
          test_drain_abort_reruns_elsewhere;
        Alcotest.test_case "load broadcast and replay" `Quick
          test_load_broadcast_and_replay;
        Alcotest.test_case "replay refusal counted" `Quick
          test_replay_refusal_is_counted;
        Alcotest.test_case "unload prunes replay log" `Quick
          test_unload_prunes_replay_log;
        Alcotest.test_case "create rejects bad sets" `Quick
          test_create_rejects_bad_sets;
      ] );
  ]
