(* API behaviours beyond the basics of Test_api: weight re-indexing under
   partitioning, and the extended matcher methods. *)
open Helpers
module Api = Phom.Api
module Matcher = Phom_web.Matcher

let test_partition_reindexes_weights () =
  (* two disconnected pattern components; node 2 (in the second component)
     is heavy and competes for a scarce target. Partitioning renumbers the
     second component's nodes, so if weights were not re-indexed through
     old_of_new, the heavy node would lose its weight. *)
  let g1 = graph [ "a"; "b"; "c"; "c" ] [ (0, 1) ] in
  (* target side: one 'c' only; both c-nodes of g1 want it *)
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  let mat = Simmat.of_label_equality g1 g2 in
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let weights = [| 1.; 1.; 1.; 9. |] in
  let r = Api.solve ~partition:true ~weights Api.SPH t in
  (* SPH is not injective so both c nodes can take the target; the point is
     the quality accounting must weight node 3 by 9 *)
  Alcotest.(check bool) "full weighted quality" true (r.Api.quality >= 1.0 -. 1e-9);
  (* and under a 1-1-style conflict (same component), the heavy node wins *)
  let g1' = graph [ "c"; "c" ] [] in
  let t' =
    Instance.make ~g1:g1' ~g2:(graph [ "c" ] [])
      ~mat:(Simmat.of_label_equality g1' (graph [ "c" ] []))
      ~xi:0.5 ()
  in
  let r' = Api.solve ~weights:[| 1.; 9. |] Api.SPH11 t' in
  Helpers.check_mapping "heavy node kept" [ (1, 0) ] r'.Api.mapping

let test_weights_module_vectors () =
  let g = graph [ "a"; "b"; "c" ] [ (0, 1); (0, 2) ] in
  List.iter
    (fun (name, w) ->
      Alcotest.(check int) (name ^ " length") 3 (Array.length w);
      Array.iter (fun x -> Alcotest.(check bool) (name ^ " positive") true (x > 0.)) w)
    [
      ("uniform", Phom.Weights.uniform g);
      ("degree", Phom.Weights.degree g);
      ("hub", Phom.Weights.hub g);
      ("authority", Phom.Weights.authority g);
    ]

let small_site seed =
  let rng = Random.State.make [| seed |] in
  Phom_web.Site_gen.generate ~rng
    {
      Phom_web.Site_gen.pages = 80;
    hub_fraction = 0.02;
    max_degree_fraction = 0.06;
    hub_affinity = 0.3;
      edges = 170;
      templates = 3;
      vocab_size = 200;
      page_length = 30;
      edit_rate = 0.02;
      rewire_rate = 0.01;
      page_churn = 0.005;
      vocab_prefix = "t";
    }

let test_extended_methods_run () =
  let sk = Phom_web.Skeleton.top_k (small_site 3) 12 in
  List.iter
    (fun m ->
      let v = Matcher.match_skeletons m sk sk in
      Alcotest.(check bool)
        (Matcher.method_name m ^ " self-match")
        true
        (v.Matcher.matched = Some true))
    [ Matcher.BlondelSim; Matcher.PathFeatures; Matcher.Ged ]

let test_extended_methods_reject_unrelated () =
  let a = Phom_web.Skeleton.top_k (small_site 4) 12 in
  let rng = Random.State.make [| 5 |] in
  let other =
    Phom_web.Site_gen.generate ~rng
      {
        Phom_web.Site_gen.pages = 80;
    hub_fraction = 0.02;
    max_degree_fraction = 0.06;
    hub_affinity = 0.3;
        edges = 170;
        templates = 3;
        vocab_size = 200;
        page_length = 30;
        edit_rate = 0.02;
        rewire_rate = 0.01;
        page_churn = 0.005;
        vocab_prefix = "other";
      }
  in
  let b = Phom_web.Skeleton.top_k other 12 in
  List.iter
    (fun m ->
      let v = Matcher.match_skeletons m a b in
      Alcotest.(check bool)
        (Matcher.method_name m ^ " rejects unrelated")
        true
        (v.Matcher.matched = Some false))
    [ Matcher.BlondelSim; Matcher.PathFeatures; Matcher.Ged ]

let test_report () =
  let g1 = graph [ "a"; "b"; "zzz" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let t = Instance.make ~g1 ~g2 ~mat:(Simmat.of_label_equality g1 g2) ~xi:0.5 () in
  let r = Api.solve Api.CPH t in
  let report = Api.report t r in
  Alcotest.(check bool) "mentions the pair" true
    (contains_substring ~needle:"0 [a] -> 0 [a]" report);
  Alcotest.(check bool) "shows the witness path" true
    (contains_substring ~needle:"(a -> b) maps to a / x / b" report);
  Alcotest.(check bool) "lists unmapped nodes" true
    (contains_substring ~needle:"unmapped pattern nodes: 2 [zzz]" report)

let test_method_names_distinct () =
  let names = List.map Matcher.method_name Matcher.extended_methods in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [
    ( "api_extended",
      [
        Alcotest.test_case "partitioning re-indexes SPH weights" `Quick
          test_partition_reindexes_weights;
        Alcotest.test_case "weight vectors" `Quick test_weights_module_vectors;
        Alcotest.test_case "extended matcher methods self-match" `Quick
          test_extended_methods_run;
        Alcotest.test_case "extended matcher methods reject unrelated" `Quick
          test_extended_methods_reject_unrelated;
        Alcotest.test_case "match report" `Quick test_report;
        Alcotest.test_case "method names distinct" `Quick test_method_names_distinct;
      ] );
  ]
