open Helpers
module Ged = Phom_baselines.Ged

let chain labels = graph labels (List.init (List.length labels - 1) (fun i -> (i, i + 1)))

let test_identical () =
  let g = chain [ "a"; "b"; "c" ] in
  Alcotest.(check (float 1e-9)) "zero distance" 0.0 (Ged.approx g g);
  Alcotest.(check (float 1e-9)) "similarity 1" 1.0 (Ged.similarity g g)

let test_empty () =
  let e = graph [] [] in
  Alcotest.(check (float 1e-9)) "both empty" 1.0 (Ged.similarity e e);
  let g = chain [ "a" ] in
  Alcotest.(check bool) "vs empty" true (Ged.similarity g e < 1.0)

let test_single_label_change () =
  let g1 = chain [ "a"; "b"; "c" ] and g2 = chain [ "a"; "b"; "z" ] in
  Alcotest.(check (float 1e-9)) "one substitution" 1.0 (Ged.approx g1 g2);
  Alcotest.(check bool) "still similar" true (Ged.similarity g1 g2 > 0.8)

let test_size_gap () =
  let small = chain [ "a" ] and big = chain [ "a"; "a"; "a"; "a"; "a"; "a" ] in
  Alcotest.(check bool) "big gap" true (Ged.similarity small big < 0.5)

let test_custom_costs () =
  let g1 = graph [ "x" ] [] and g2 = graph [ "y" ] [] in
  let mat = Simmat.of_fun ~n1:1 ~n2:1 (fun _ _ -> 0.9) in
  let c = Ged.costs_of_simmat mat in
  Alcotest.(check (float 1e-6)) "soft substitution" 0.1 (Ged.approx ~costs:c g1 g2);
  Alcotest.(check bool) "matches" true (Ged.matches ~costs:c g1 g2)

let test_upper_bound_on_true_ged () =
  (* the assignment GED over-estimates; sanity-check one known case:
     a→b vs the same graph plus one extra isolated node = 1 insertion *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  Alcotest.(check bool) "≥ true distance (1)" true (Ged.approx g1 g2 >= 1.0 -. 1e-9);
  Alcotest.(check bool) "not wildly over" true (Ged.approx g1 g2 <= 2.0 +. 1e-9)

let prop_bounds =
  qtest ~count:80 "ged: similarity in [0,1], identical graphs at 1"
    (QCheck.Gen.pair (digraph_gen ~max_n:6 ()) (digraph_gen ~max_n:6 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      let s = Ged.similarity g1 g2 in
      s >= 0. && s <= 1. && Ged.similarity g1 g1 = 1.0)

let prop_nonneg_distance =
  qtest ~count:80 "ged: distances non-negative"
    (QCheck.Gen.pair (digraph_gen ~max_n:6 ()) (digraph_gen ~max_n:6 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) -> Ged.approx g1 g2 >= -1e-9)

let suite =
  [
    ( "ged",
      [
        Alcotest.test_case "identical graphs" `Quick test_identical;
        Alcotest.test_case "empty graphs" `Quick test_empty;
        Alcotest.test_case "single substitution" `Quick test_single_label_change;
        Alcotest.test_case "size gap" `Quick test_size_gap;
        Alcotest.test_case "simmat costs" `Quick test_custom_costs;
        Alcotest.test_case "upper-bound behaviour" `Quick test_upper_bound_on_true_ged;
        prop_bounds;
        prop_nonneg_distance;
      ] );
  ]
