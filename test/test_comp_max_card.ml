open Helpers
module CMC = Phom.Comp_max_card
module Exact = Phom.Exact

let test_edge_to_path () =
  (* pattern a→b, data a→x→b: homomorphism fails, p-hom succeeds *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let t = eq_instance g1 g2 in
  let m = CMC.run t in
  check_mapping "full mapping" [ (0, 0); (1, 2) ] m

let test_no_candidates () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "b" ] [] in
  Alcotest.(check (list (pair int int))) "empty" [] (CMC.run (eq_instance g1 g2))

let test_empty_pattern () =
  let t = eq_instance (graph [] []) (graph [ "a" ] []) in
  Alcotest.(check (list (pair int int))) "empty pattern" [] (CMC.run t)

let test_injective_shares_nothing () =
  (* two a-nodes vs one a-node: plain maps both, 1-1 maps one *)
  let g1 = graph [ "a"; "a" ] [] and g2 = graph [ "a" ] [] in
  let t = eq_instance g1 g2 in
  Alcotest.(check int) "plain maps both" 2 (Mapping.size (CMC.run t));
  Alcotest.(check int) "1-1 maps one" 1 (Mapping.size (CMC.run ~injective:true t))

let test_cycle_pattern () =
  (* cyclic pattern into a bigger cycle: every edge becomes a path *)
  let g1 = graph [ "a"; "b" ] [ (0, 1); (1, 0) ] in
  let g2 = graph [ "a"; "x"; "b"; "y" ] [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let t = eq_instance g1 g2 in
  let m = CMC.run t in
  check_valid t m;
  Alcotest.(check int) "both mapped" 2 (Mapping.size m)

let test_self_loop_pattern () =
  let g1 = graph [ "a" ] [ (0, 0) ] in
  let g2_flat = graph [ "a" ] [] in
  let g2_cyc = graph [ "a"; "b" ] [ (0, 1); (1, 0) ] in
  Alcotest.(check int) "no cyclic target" 0
    (Mapping.size (CMC.run (eq_instance g1 g2_flat)));
  Alcotest.(check int) "cyclic target works" 1
    (Mapping.size (CMC.run (eq_instance g1 g2_cyc)))

(* ---- properties ---- *)

let prop_always_valid =
  qtest ~count:200 "compMaxCard: output is a valid p-hom mapping"
    (instance_gen ()) print_instance (fun t ->
      Instance.is_valid t (CMC.run t))

let prop_injective_valid =
  qtest ~count:200 "compMaxCard1-1: output is a valid 1-1 mapping"
    (instance_gen ()) print_instance (fun t ->
      Instance.is_valid ~injective:true t (CMC.run ~injective:true t))

let prop_bounded_by_exact =
  qtest ~count:120 "compMaxCard: quality ≤ exact optimum" (instance_gen ())
    print_instance (fun t ->
      let approx = Instance.qual_card t (CMC.run t) in
      let e = Exact.solve ~objective:Phom.Exact.Cardinality t in
      (e.Phom.Exact.status <> Phom_graph.Budget.Complete)
      || approx <= Instance.qual_card t e.Phom.Exact.mapping +. 1e-9)

let prop_injective_leq_plain =
  qtest ~count:120 "compMaxCard: 1-1 exact ≤ plain exact" (instance_gen ())
    print_instance (fun t ->
      let e = Exact.solve ~objective:Phom.Exact.Cardinality t in
      let e11 = Exact.solve ~injective:true ~objective:Phom.Exact.Cardinality t in
      Instance.qual_card t e11.Phom.Exact.mapping
      <= Instance.qual_card t e.Phom.Exact.mapping +. 1e-9)

let prop_identity_when_subgraph =
  (* plant G1 inside G2: greedy must match everything *)
  qtest ~count:100 "compMaxCard: finds planted copies"
    (QCheck.Gen.map
       (fun g1 ->
         let g2 = D.disjoint_union g1 (graph [ "Z" ] []) in
         (g1, g2))
       (digraph_gen ~max_n:6 ()))
    (fun (g1, _) -> print_digraph g1)
    (fun (g1, g2) ->
      let t = eq_instance g1 g2 in
      (* the identity embedding exists, so the exact optimum is 1.0; the
         greedy result must be a valid mapping of some quality, and the
         exact solver must find the copy *)
      let e = Exact.solve ~injective:true ~objective:Phom.Exact.Cardinality t in
      Instance.qual_card t e.Phom.Exact.mapping = 1.0
      && Instance.is_valid t (CMC.run t))

let prop_more_g2_edges_help =
  qtest ~count:80 "compMaxCard: adding G2 edges never lowers the exact optimum"
    (instance_gen ()) print_instance (fun t ->
      let before =
        Instance.qual_card t
          (Exact.solve ~objective:Phom.Exact.Cardinality t).Phom.Exact.mapping
      in
      (* add a few arbitrary edges to g2 *)
      let n2 = D.n t.g2 in
      if n2 < 2 then true
      else begin
        let extra = [ (0, n2 - 1); (n2 - 1, 0) ] in
        let g2' = D.add_edges t.g2 extra in
        let t' = Instance.make ~g1:t.g1 ~g2:g2' ~mat:t.mat ~xi:t.xi () in
        let after =
          Instance.qual_card t'
            (Exact.solve ~objective:Phom.Exact.Cardinality t').Phom.Exact.mapping
        in
        after >= before -. 1e-9
      end)

let prop_lower_xi_helps =
  qtest ~count:80 "compMaxCard: lowering ξ never lowers the exact optimum"
    (instance_gen ~xi:0.7 ()) print_instance (fun t ->
      let opt xi =
        let t' = Instance.make ~g1:t.g1 ~g2:t.g2 ~mat:t.mat ~xi () in
        Instance.qual_card t'
          (Exact.solve ~objective:Phom.Exact.Cardinality t').Phom.Exact.mapping
      in
      opt 0.3 >= opt 0.7 -. 1e-9)

let suite =
  [
    ( "comp_max_card",
      [
        Alcotest.test_case "edge-to-path" `Quick test_edge_to_path;
        Alcotest.test_case "no candidates" `Quick test_no_candidates;
        Alcotest.test_case "empty pattern" `Quick test_empty_pattern;
        Alcotest.test_case "1-1 target exclusivity" `Quick
          test_injective_shares_nothing;
        Alcotest.test_case "cyclic pattern" `Quick test_cycle_pattern;
        Alcotest.test_case "self-loop pattern" `Quick test_self_loop_pattern;
        prop_always_valid;
        prop_injective_valid;
        prop_bounded_by_exact;
        prop_injective_leq_plain;
        prop_identity_when_subgraph;
        prop_more_g2_edges_help;
        prop_lower_xi_helps;
      ] );
  ]
