(* Property-based oracle suite: hundreds of small random instances where
   exact solving is feasible, cross-checking the paper's heuristics against
   the exact optimum.

   The oracle is the Theorem-5.1 reduction end to end: build the product
   (compatibility) graph and hand it to the bitset MWC engine — maximum
   cardinality clique for CPH/CPH1-1, maximum weight clique for SPH/SPH1-1.
   A small per-instance step budget suffices now that the engine carries
   colouring bounds and greedy restarts (the old assignment-tree oracle
   needed a 5M-step safety net; the MWC oracle gets 150k and must still
   prove optimality on every instance). Every 5th seed additionally runs
   the legacy assignment-tree oracle and requires the two optima to agree,
   so the reduction itself stays covered.

   For every seeded instance and every problem variant:
   - the heuristic's mapping is a valid (1-1) p-hom mapping,
   - its quality never exceeds the exact optimum,
   - the 1-1 variants return injective mappings,
   - the oracle itself completes within its budget and returns a valid
     mapping.

   Everything is driven by fixed seeds — no [Random.self_init] — so a
   failure names the exact instance that produced it and replays forever. *)

module D = Phom_graph.Digraph
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Product = Phom_wis.Product
module Mwc = Phom_wis.Mwc
module Mapping = Phom.Mapping
module Instance = Phom.Instance
module Api = Phom.Api

let instance_count = 500
let eps = 1e-9

(* the whole point of the MWC oracle: optimality proofs on these sizes cost
   a few hundred search nodes, so the per-instance allowance drops from the
   assignment-tree oracle's 5M-step safety net to this *)
let oracle_budget_steps = 150_000

(* one fixed label pool; similarity comes from the matrix, labels are only
   cosmetic here *)
let labels = [| "A"; "B"; "C"; "D"; "E" |]

(* deterministic instance [i]: pattern of 2-8 nodes, data graph of up to 12
   nodes, a graded random similarity matrix thinned so candidate sets stay
   small enough for the exact oracle *)
let instance_of_seed i =
  let rng = Random.State.make [| 0x0b5; 0xe44; i |] in
  let n1 = 2 + Random.State.int rng 7 in
  let n2 = n1 + Random.State.int rng (13 - n1) in
  let random_graph n edge_prob =
    let lbls =
      Array.init n (fun _ -> labels.(Random.State.int rng (Array.length labels)))
    in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if Random.State.float rng 1.0 < edge_prob then edges := (u, v) :: !edges
      done
    done;
    D.make ~labels:lbls ~edges:!edges
  in
  let g1 = random_graph n1 0.25 in
  let g2 = random_graph n2 0.3 in
  (* graded similarities: ~40% of the pairs clear xi = 0.5, in four grades,
     so candidate rows average under five entries *)
  let mat =
    Simmat.of_fun ~n1 ~n2 (fun _ _ ->
        match Random.State.int rng 10 with
        | 0 | 1 -> 0.5
        | 2 -> 0.65
        | 3 -> 0.8
        | 4 -> 1.0
        | _ -> Random.State.float rng 0.45)
  in
  let weights = Array.init n1 (fun _ -> 0.25 +. Random.State.float rng 0.75) in
  (Instance.make ~g1 ~g2 ~mat ~xi:0.5 (), weights)

let problems = [ Api.CPH; Api.CPH11; Api.SPH; Api.SPH11 ]

let injective = function Api.CPH | Api.SPH -> false | _ -> true
let weighted = function Api.SPH | Api.SPH11 -> true | _ -> false

(* the Theorem-5.1 oracle: product graph + MWC engine, clique decoded back
   to a mapping *)
let mwc_oracle ~problem ~weights (t : Instance.t) =
  let inj = injective problem in
  let p =
    Product.build ~injective:inj
      ?weights:(if weighted problem then Some weights else None)
      ~g1:t.Instance.g1 ~tc2:t.Instance.tc2 ~mat:t.Instance.mat
      ~xi:t.Instance.xi ()
  in
  let budget = Budget.create ~steps:oracle_budget_steps () in
  let r =
    if weighted problem then Mwc.solve ~budget p.Product.graph
    else Mwc.solve_cardinality ~budget p.Product.graph
  in
  (Product.mapping_of_clique p r.Mwc.clique, r.Mwc.status)

let quality ~problem ~weights (t : Instance.t) mapping =
  if weighted problem then Instance.qual_sim ~weights t mapping
  else Instance.qual_card t mapping

let check_instance i =
  let t, weights = instance_of_seed i in
  List.iter
    (fun problem ->
      let name fmt =
        Printf.ksprintf
          (fun s -> Printf.sprintf "seed %d %s: %s" i (Api.problem_name problem) s)
          fmt
      in
      let inj = injective problem in
      let heur = Api.solve_within ~algorithm:Api.Direct ~weights problem t in
      let oracle_mapping, oracle_status = mwc_oracle ~problem ~weights t in
      let oracle_quality = quality ~problem ~weights t oracle_mapping in
      (* the oracle must actually be an oracle on these sizes *)
      Alcotest.(check bool)
        (name "oracle completes")
        true
        (oracle_status = Budget.Complete);
      Alcotest.(check bool)
        (name "oracle mapping valid")
        true
        (Instance.is_valid ~injective:inj t oracle_mapping);
      Alcotest.(check bool)
        (name "heuristic mapping valid")
        true
        (Instance.is_valid ~injective:inj t heur.Api.mapping);
      if inj then
        Alcotest.(check bool)
          (name "heuristic mapping injective")
          true
          (Mapping.is_injective heur.Api.mapping);
      if heur.Api.quality > oracle_quality +. eps then
        Alcotest.failf
          "seed %d %s: heuristic quality %.9f exceeds exact optimum %.9f" i
          (Api.problem_name problem) heur.Api.quality oracle_quality;
      (* the low-treewidth slice: the tree-decomposition DP must reproduce
         the MWC oracle's optimum on every narrow instance (its home turf —
         the 1-1 problems exercise the injective-witness fallback) *)
      if Phom.Dp.width t <= 2 then begin
        let dp = Api.solve_within ~algorithm:Api.Dp_td ~weights problem t in
        Alcotest.(check bool)
          (name "dp mapping valid")
          true
          (Instance.is_valid ~injective:inj t dp.Api.mapping);
        Alcotest.(check (float 1e-6))
          (name "dp agrees with mwc oracle")
          oracle_quality dp.Api.quality
      end;
      (* keep the reduction honest: on a sample of seeds the legacy
         assignment-tree oracle must find the same optimum value *)
      if i mod 5 = 0 then begin
        let legacy =
          Api.solve_within ~algorithm:Api.Exact_bb ~weights problem t
        in
        Alcotest.(check bool)
          (name "legacy oracle completes")
          true
          (legacy.Api.status = Budget.Complete);
        Alcotest.(check (float 1e-6))
          (name "oracles agree")
          legacy.Api.quality oracle_quality
      end)
    problems

(* chunked so a failure points at a narrow seed range and the suite shows
   progress instead of one silent five-hundred-instance case *)
let chunk lo hi () =
  for i = lo to hi - 1 do
    check_instance i
  done

let suite =
  let chunks = 5 in
  let per = instance_count / chunks in
  [
    ( "property oracle",
      List.init chunks (fun c ->
          let lo = c * per and hi = (c + 1) * per in
          Alcotest.test_case
            (Printf.sprintf "heuristics vs exact, seeds %d-%d" lo (hi - 1))
            `Slow (chunk lo hi)) );
  ]
