(* Property-based oracle suite: hundreds of small random instances where
   the exact branch-and-bound solver is feasible, cross-checking the
   paper's heuristics against it.

   For every seeded instance and every problem variant:
   - the heuristic's mapping is a valid (1-1) p-hom mapping,
   - its quality never exceeds the exact optimum,
   - the 1-1 variants return injective mappings,
   - the exact oracle itself completes (instances are sized for it) and
     returns a valid mapping.

   Everything is driven by fixed seeds — no [Random.self_init] — so a
   failure names the exact instance that produced it and replays forever. *)

module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat
module Mapping = Phom.Mapping
module Instance = Phom.Instance
module Api = Phom.Api

let instance_count = 500
let eps = 1e-9

(* one fixed label pool; similarity comes from the matrix, labels are only
   cosmetic here *)
let labels = [| "A"; "B"; "C"; "D"; "E" |]

(* deterministic instance [i]: pattern of 2-8 nodes, data graph of up to 12
   nodes, a graded random similarity matrix thinned so candidate sets stay
   small enough for the exact oracle *)
let instance_of_seed i =
  let rng = Random.State.make [| 0x0b5; 0xe44; i |] in
  let n1 = 2 + Random.State.int rng 7 in
  let n2 = n1 + Random.State.int rng (13 - n1) in
  let random_graph n edge_prob =
    let lbls =
      Array.init n (fun _ -> labels.(Random.State.int rng (Array.length labels)))
    in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if Random.State.float rng 1.0 < edge_prob then edges := (u, v) :: !edges
      done
    done;
    D.make ~labels:lbls ~edges:!edges
  in
  let g1 = random_graph n1 0.25 in
  let g2 = random_graph n2 0.3 in
  (* graded similarities: ~40% of the pairs clear xi = 0.5, in four grades,
     so candidate rows average under five entries *)
  let mat =
    Simmat.of_fun ~n1 ~n2 (fun _ _ ->
        match Random.State.int rng 10 with
        | 0 | 1 -> 0.5
        | 2 -> 0.65
        | 3 -> 0.8
        | 4 -> 1.0
        | _ -> Random.State.float rng 0.45)
  in
  let weights = Array.init n1 (fun _ -> 0.25 +. Random.State.float rng 0.75) in
  (Instance.make ~g1 ~g2 ~mat ~xi:0.5 (), weights)

let problems = [ Api.CPH; Api.CPH11; Api.SPH; Api.SPH11 ]

let injective = function Api.CPH | Api.SPH -> false | _ -> true

let check_instance i =
  let t, weights = instance_of_seed i in
  List.iter
    (fun problem ->
      let name fmt =
        Printf.ksprintf
          (fun s -> Printf.sprintf "seed %d %s: %s" i (Api.problem_name problem) s)
          fmt
      in
      let inj = injective problem in
      let heur = Api.solve_within ~algorithm:Api.Direct ~weights problem t in
      let oracle = Api.solve_within ~algorithm:Api.Exact_bb ~weights problem t in
      (* the oracle must actually be an oracle on these sizes *)
      Alcotest.(check bool)
        (name "oracle completes")
        true
        (oracle.Api.status = Phom_graph.Budget.Complete);
      Alcotest.(check bool)
        (name "oracle mapping valid")
        true
        (Instance.is_valid ~injective:inj t oracle.Api.mapping);
      Alcotest.(check bool)
        (name "heuristic mapping valid")
        true
        (Instance.is_valid ~injective:inj t heur.Api.mapping);
      if inj then
        Alcotest.(check bool)
          (name "heuristic mapping injective")
          true
          (Mapping.is_injective heur.Api.mapping);
      if heur.Api.quality > oracle.Api.quality +. eps then
        Alcotest.failf
          "seed %d %s: heuristic quality %.9f exceeds exact optimum %.9f" i
          (Api.problem_name problem) heur.Api.quality oracle.Api.quality)
    problems

(* chunked so a failure points at a narrow seed range and the suite shows
   progress instead of one silent five-hundred-instance case *)
let chunk lo hi () =
  for i = lo to hi - 1 do
    check_instance i
  done

let suite =
  let chunks = 5 in
  let per = instance_count / chunks in
  [
    ( "property oracle",
      List.init chunks (fun c ->
          let lo = c * per and hi = (c + 1) * per in
          Alcotest.test_case
            (Printf.sprintf "heuristics vs exact, seeds %d-%d" lo (hi - 1))
            `Slow (chunk lo hi)) );
  ]
