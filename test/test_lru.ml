(* The daemon's byte-accounted LRU artifact cache: capacity accounting,
   eviction order, invalidation sweeps, and counter exactness when pool
   workers hit one cache concurrently. *)

module Lru = Phom_server.Lru
module Pool = Phom_parallel.Pool

(* values are (payload, weight) pairs so each test controls byte accounting
   directly *)
let cache ?(capacity = 100) () = Lru.create ~capacity_bytes:capacity ~weight:snd ()

let check_stats name t ~hits ~misses ~evictions ~entries ~bytes =
  let s = Lru.stats t in
  Alcotest.(check int) (name ^ " hits") hits s.Lru.hits;
  Alcotest.(check int) (name ^ " misses") misses s.Lru.misses;
  Alcotest.(check int) (name ^ " evictions") evictions s.Lru.evictions;
  Alcotest.(check int) (name ^ " entries") entries s.Lru.entries;
  Alcotest.(check int) (name ^ " bytes") bytes s.Lru.bytes

let test_basic_hit_miss () =
  let t = cache () in
  Alcotest.(check (option (pair string int))) "empty" None (Lru.find t "a");
  Lru.put t "a" ("A", 10);
  Alcotest.(check (option (pair string int))) "hit" (Some ("A", 10)) (Lru.find t "a");
  check_stats "after one miss one hit" t ~hits:1 ~misses:1 ~evictions:0
    ~entries:1 ~bytes:10

let test_capacity_accounting () =
  let t = cache ~capacity:100 () in
  Lru.put t "a" ("A", 40);
  Lru.put t "b" ("B", 40);
  check_stats "two resident" t ~hits:0 ~misses:0 ~evictions:0 ~entries:2 ~bytes:80;
  (* replacing a key swaps its weight, not adds *)
  Lru.put t "a" ("A2", 10);
  check_stats "replace adjusts bytes" t ~hits:0 ~misses:0 ~evictions:0
    ~entries:2 ~bytes:50;
  Alcotest.(check (option (pair string int))) "replacement visible"
    (Some ("A2", 10)) (Lru.find t "a")

let test_eviction_order () =
  let t = cache ~capacity:100 () in
  Lru.put t "a" ("A", 40);
  Lru.put t "b" ("B", 40);
  (* touch "a" so "b" is now the least recently used *)
  ignore (Lru.find t "a");
  Lru.put t "c" ("C", 40);
  Alcotest.(check bool) "a survived (recently used)" true (Lru.find t "a" <> None);
  Alcotest.(check bool) "b evicted (LRU)" true (Lru.find t "b" = None);
  Alcotest.(check bool) "c resident" true (Lru.find t "c" <> None);
  let s = Lru.stats t in
  Alcotest.(check int) "one eviction" 1 s.Lru.evictions;
  Alcotest.(check int) "bytes fit capacity" 80 s.Lru.bytes

let test_eviction_cascade () =
  let t = cache ~capacity:100 () in
  Lru.put t "a" ("A", 30);
  Lru.put t "b" ("B", 30);
  Lru.put t "c" ("C", 30);
  (* 90 resident; an 80-weight insert leaves room for nothing else, so the
     eviction loop must walk through all three in LRU order *)
  Lru.put t "d" ("D", 80);
  let s = Lru.stats t in
  Alcotest.(check int) "three evictions" 3 s.Lru.evictions;
  Alcotest.(check int) "entries" 1 s.Lru.entries;
  Alcotest.(check int) "bytes" 80 s.Lru.bytes;
  Alcotest.(check bool) "a evicted" true (Lru.find t "a" = None);
  Alcotest.(check bool) "b evicted" true (Lru.find t "b" = None);
  Alcotest.(check bool) "c evicted" true (Lru.find t "c" = None);
  Alcotest.(check bool) "d resident" true (Lru.find t "d" <> None)

let test_oversize_value_not_stored () =
  let t = cache ~capacity:100 () in
  Lru.put t "a" ("A", 40);
  Lru.put t "big" ("BIG", 101);
  Alcotest.(check bool) "oversize absent" true (Lru.find t "big" = None);
  Alcotest.(check bool) "resident untouched" true (Lru.find t "a" <> None);
  let s = Lru.stats t in
  Alcotest.(check int) "no eviction for a value that cannot fit" 0 s.Lru.evictions;
  Alcotest.(check int) "bytes" 40 s.Lru.bytes

let test_remove_if () =
  let t = cache ~capacity:1000 () in
  List.iter (fun k -> Lru.put t k (k, 10)) [ "g1/c"; "g1/m"; "g2/c"; "g2/m" ];
  let dropped = Lru.remove_if t (fun k -> String.length k >= 2 && String.sub k 0 2 = "g1") in
  Alcotest.(check int) "dropped both g1 artifacts" 2 dropped;
  let s = Lru.stats t in
  Alcotest.(check int) "entries left" 2 s.Lru.entries;
  Alcotest.(check int) "bytes left" 20 s.Lru.bytes;
  Alcotest.(check int) "invalidation is not eviction" 0 s.Lru.evictions;
  Alcotest.(check bool) "g2 artifacts survive" true (Lru.find t "g2/c" <> None);
  Alcotest.(check int) "no-op sweep" 0 (Lru.remove_if t (fun _ -> false))

let test_clear () =
  let t = cache () in
  Lru.put t "a" ("A", 10);
  ignore (Lru.find t "a");
  ignore (Lru.find t "zzz");
  Lru.clear t;
  check_stats "cleared keeps counters" t ~hits:1 ~misses:1 ~evictions:0
    ~entries:0 ~bytes:0

let test_find_or_add () =
  let t = cache () in
  let calls = ref 0 in
  let compute () = incr calls; ("V", 10) in
  let v1, hit1 = Lru.find_or_add t "k" compute in
  let v2, hit2 = Lru.find_or_add t "k" compute in
  Alcotest.(check (pair string int)) "computed" ("V", 10) v1;
  Alcotest.(check (pair string int)) "served" ("V", 10) v2;
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check bool) "second is a hit" true hit2;
  Alcotest.(check int) "computed once" 1 !calls

(* counters must stay exact when pool workers hammer one cache: every
   lookup is exactly one hit or one miss, under any interleaving *)
let test_concurrent_counters () =
  let t = cache ~capacity:1_000_000 () in
  let keys = 8 and per_key = 50 in
  Pool.with_pool ~domains:4 (fun pool ->
      let work = Array.init (keys * per_key) (fun i -> i mod keys) in
      let results =
        Pool.map pool
          (fun k ->
            let _, hit = Lru.find_or_add t k (fun () -> (string_of_int k, 1)) in
            if hit then 1 else 0)
          work
      in
      let hits = Array.fold_left ( + ) 0 results in
      let s = Lru.stats t in
      (* find_or_add's initial probe counts one hit or one miss per call *)
      Alcotest.(check int) "hits + misses = lookups" (keys * per_key)
        (s.Lru.hits + s.Lru.misses);
      Alcotest.(check int) "counter hits match returned hits" hits s.Lru.hits;
      Alcotest.(check int) "all keys resident" keys s.Lru.entries;
      Alcotest.(check bool) "misses >= keys" true (s.Lru.misses >= keys);
      Alcotest.(check int) "no evictions" 0 s.Lru.evictions)

let test_bindings_order () =
  let t = cache ~capacity:1000 () in
  Lru.put t "a" ("A", 10);
  Lru.put t "b" ("B", 10);
  Lru.put t "c" ("C", 10);
  ignore (Lru.find t "a");
  (* the snapshot exporter's view: least-recently-used first, so restoring
     in this order reproduces the recency order *)
  Alcotest.(check (list string)) "LRU-first order" [ "b"; "c"; "a" ]
    (List.map fst (Lru.bindings t));
  let s = Lru.stats t in
  Alcotest.(check int) "bindings counts no hits" 1 s.Lru.hits

(* an invalidation sweep racing concurrent lookups: every lookup must see
   either its own freshly computed value or a resident one for the same
   key — never a value the sweep already removed (resurrection), and the
   byte accounting must stay exact through any interleaving *)
let test_remove_if_racing_lookups () =
  let t = cache ~capacity:1_000_000 () in
  Pool.with_pool ~domains:4 (fun pool ->
      let work = Array.init 400 (fun i -> i) in
      let results =
        Pool.map pool
          (fun i ->
            if i mod 10 = 0 then begin
              ignore (Lru.remove_if t (fun k -> k mod 2 = 0));
              0
            end
            else
              let k = i mod 8 in
              let v, _ = Lru.find_or_add t k (fun () -> (string_of_int k, 1)) in
              if fst v = string_of_int k then 0 else 1)
          work
      in
      Alcotest.(check int) "every lookup saw its own key's value" 0
        (Array.fold_left ( + ) 0 results));
  let s = Lru.stats t in
  Alcotest.(check int) "bytes track entries exactly" s.Lru.entries s.Lru.bytes;
  (* a final sweep of everything leaves a consistent empty cache *)
  ignore (Lru.remove_if t (fun _ -> true));
  let s = Lru.stats t in
  Alcotest.(check int) "swept empty" 0 s.Lru.entries;
  Alcotest.(check int) "swept bytes" 0 s.Lru.bytes

let test_negative_capacity_rejected () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Lru.create ~capacity_bytes:(-1) ~weight:(fun _ -> 1) ()))

let suite =
  [
    ( "lru",
      [
        Alcotest.test_case "basic hit/miss" `Quick test_basic_hit_miss;
        Alcotest.test_case "capacity accounting" `Quick test_capacity_accounting;
        Alcotest.test_case "eviction order" `Quick test_eviction_order;
        Alcotest.test_case "eviction cascade" `Quick test_eviction_cascade;
        Alcotest.test_case "oversize value not stored" `Quick
          test_oversize_value_not_stored;
        Alcotest.test_case "remove_if invalidation" `Quick test_remove_if;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "find_or_add" `Quick test_find_or_add;
        Alcotest.test_case "concurrent counters" `Quick test_concurrent_counters;
        Alcotest.test_case "bindings order" `Quick test_bindings_order;
        Alcotest.test_case "remove_if racing lookups" `Quick
          test_remove_if_racing_lookups;
        Alcotest.test_case "negative capacity rejected" `Quick
          test_negative_capacity_rejected;
      ] );
  ]
