open Helpers
module Sim = Phom_baselines.Simulation

let test_identical_graphs () =
  let g = graph [ "a"; "b" ] [ (0, 1) ] in
  let sim = Sim.compute g g in
  Alcotest.(check bool) "matches itself" true (Sim.matches_whole_graph sim);
  Alcotest.(check (list int)) "a sim a" [ 0 ] (Bitset.to_list sim.(0))

let test_edge_to_path_fails () =
  (* the defining difference from p-hom: subdivision breaks simulation *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let sim = Sim.compute g1 g2 in
  Alcotest.(check bool) "simulation fails on subdivision" false
    (Sim.matches_whole_graph sim);
  (* while p-hom succeeds *)
  Alcotest.(check (option bool)) "p-hom succeeds" (Some true)
    (Phom.Api.decide_phom (eq_instance g1 g2))

let test_extra_children_ok () =
  (* data may have more structure: a→b matches a→{b,c} *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "extra children fine" true
    (Sim.matches_whole_graph (Sim.compute g1 g2))

let test_cycle_simulated_by_cycle () =
  let g1 = graph [ "a"; "a" ] [ (0, 1); (1, 0) ] in
  let g2 = graph [ "a" ] [ (0, 0) ] in
  Alcotest.(check bool) "2-cycle into self-loop" true
    (Sim.matches_whole_graph (Sim.compute g1 g2));
  Alcotest.(check bool) "self-loop into plain 2-path fails" false
    (Sim.matches_whole_graph
       (Sim.compute g2 (graph [ "a"; "a" ] [ (0, 1) ])))

let test_of_simmat () =
  let g1 = graph [ "x" ] [] and g2 = graph [ "y" ] [] in
  let mat = Simmat.of_fun ~n1:1 ~n2:1 (fun _ _ -> 0.9) in
  let sim = Sim.of_simmat ~mat ~xi:0.8 g1 g2 in
  Alcotest.(check bool) "similarity-compat" true (Sim.matches_whole_graph sim)

let prop_engines_agree =
  qtest ~count:120 "simulation: HHK = naive fixpoint"
    (QCheck.Gen.pair (digraph_gen ()) (digraph_gen ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      let a = Sim.compute ~engine:Sim.Naive g1 g2 in
      let b = Sim.compute ~engine:Sim.Hhk g1 g2 in
      Array.for_all2 Bitset.equal a b)

let test_dual_simulation () =
  (* a → b vs data with an extra parentless b: plain simulation admits the
     extra b, dual simulation rejects it *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b"; "b" ] [ (0, 1) ] in
  let plain = Sim.compute g1 g2 and dual = Sim.dual g1 g2 in
  Alcotest.(check (list int)) "plain keeps both b's" [ 1; 2 ]
    (Bitset.to_list plain.(1));
  Alcotest.(check (list int)) "dual drops the orphan" [ 1 ]
    (Bitset.to_list dual.(1))

let prop_dual_contained_in_plain =
  qtest ~count:80 "simulation: dual ⊆ plain"
    (QCheck.Gen.pair (digraph_gen ()) (digraph_gen ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      let plain = Sim.compute g1 g2 and dual = Sim.dual g1 g2 in
      Array.for_all2 (fun d p -> Bitset.subset d p) dual plain)

let test_hhk_scales () =
  (* a graph the naive engine handles slowly but HHK eats for breakfast:
     this only asserts HHK's correctness at a size with interesting churn *)
  let rng = Random.State.make [| 21 |] in
  let mk () =
    Phom_graph.Generators.erdos_renyi ~rng ~n:120 ~m:480 ~labels:(fun i ->
        "l" ^ string_of_int (i mod 3))
  in
  let g1 = mk () and g2 = mk () in
  let sim = Sim.compute ~engine:Sim.Hhk g1 g2 in
  Alcotest.(check bool) "is a simulation" true (Sim.is_simulation g1 g2 sim)

let prop_result_is_simulation =
  qtest ~count:100 "simulation: fixpoint is a simulation"
    (QCheck.Gen.pair (digraph_gen ()) (digraph_gen ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) -> Sim.is_simulation g1 g2 (Sim.compute g1 g2))

let prop_maximal =
  (* any simulation relation is contained in the computed one *)
  qtest ~count:60 "simulation: fixpoint is maximal"
    (QCheck.Gen.pair (digraph_gen ~max_n:5 ()) (digraph_gen ~max_n:5 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      let sim = Sim.compute g1 g2 in
      (* brute check: every compatible pair not in sim breaks the condition
         for every relation extending sim with it — we verify the weaker,
         testable fact that adding any missing pair to sim violates the
         simulation conditions *)
      let ok = ref true in
      for v = 0 to D.n g1 - 1 do
        for u = 0 to D.n g2 - 1 do
          if
            String.equal (D.label g1 v) (D.label g2 u)
            && not (Bitset.mem sim.(v) u)
          then begin
            let extended = Array.map Bitset.copy sim in
            Bitset.add extended.(v) u;
            if Sim.is_simulation g1 g2 extended then ok := false
          end
        done
      done;
      !ok)

(* Note: whole-graph simulation does NOT imply a full p-hom mapping —
   simulation is a relation, p-hom a function (two pattern parents sharing a
   simulated child can need different concrete children). The paper makes
   the same observation in Related Work. So no implication property here. *)

let suite =
  [
    ( "simulation",
      [
        Alcotest.test_case "identical graphs" `Quick test_identical_graphs;
        Alcotest.test_case "subdivision breaks simulation" `Quick
          test_edge_to_path_fails;
        Alcotest.test_case "extra children" `Quick test_extra_children_ok;
        Alcotest.test_case "cycles" `Quick test_cycle_simulated_by_cycle;
        Alcotest.test_case "similarity compatibility" `Quick test_of_simmat;
        Alcotest.test_case "HHK at scale" `Quick test_hhk_scales;
        Alcotest.test_case "dual simulation" `Quick test_dual_simulation;
        prop_engines_agree;
        prop_dual_contained_in_plain;
        prop_result_is_simulation;
        prop_maximal;
      ] );
  ]
