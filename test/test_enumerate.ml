open Helpers
module Exact = Phom.Exact

let test_two_witnesses () =
  (* one pattern node, two identical targets: two optimal mappings *)
  let g1 = graph [ "a" ] [] and g2 = graph [ "a"; "a" ] [] in
  let t = eq_instance g1 g2 in
  let mappings, exhaustive =
    Exact.enumerate_optimal ~objective:Exact.Cardinality t
  in
  Alcotest.(check bool) "exhaustive" true exhaustive;
  Alcotest.(check (list (list (pair int int)))) "both witnesses"
    [ [ (0, 0) ]; [ (0, 1) ] ]
    mappings

let test_limit_truncates () =
  let g1 = graph [ "a"; "a" ] [] and g2 = graph [ "a"; "a"; "a" ] [] in
  let t = eq_instance g1 g2 in
  let mappings, exhaustive =
    Exact.enumerate_optimal ~limit:2 ~objective:Exact.Cardinality t
  in
  Alcotest.(check bool) "truncated" false exhaustive;
  Alcotest.(check int) "two returned" 2 (List.length mappings)

let test_unique_optimum () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let t = eq_instance g1 g2 in
  let mappings, exhaustive =
    Exact.enumerate_optimal ~objective:Exact.Cardinality t
  in
  Alcotest.(check bool) "exhaustive" true exhaustive;
  Alcotest.(check (list (list (pair int int)))) "unique" [ [ (0, 0); (1, 2) ] ]
    mappings

let test_similarity_objective () =
  (* two targets with different similarity: the similarity objective keeps
     only the better one; the cardinality objective keeps both *)
  let g1 = graph [ "a" ] [] and g2 = graph [ "x"; "y" ] [] in
  let mat = Simmat.create ~n1:1 ~n2:2 in
  Simmat.set mat 0 0 0.9;
  Simmat.set mat 0 1 0.6;
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let by_sim, _ =
    Exact.enumerate_optimal ~objective:(Exact.Similarity [| 1. |]) t
  in
  Alcotest.(check (list (list (pair int int)))) "only the best" [ [ (0, 0) ] ]
    by_sim;
  let by_card, _ = Exact.enumerate_optimal ~objective:Exact.Cardinality t in
  Alcotest.(check int) "cardinality keeps both" 2 (List.length by_card)

let prop_all_optimal_and_valid =
  qtest ~count:80 "enumerate: every mapping is valid and optimal"
    (instance_gen ~max_n1:3 ~max_n2:4 ()) print_instance (fun t ->
      let opt = Exact.solve ~objective:Exact.Cardinality t in
      let mappings, _ = Exact.enumerate_optimal ~objective:Exact.Cardinality t in
      mappings <> []
      && List.for_all
           (fun m ->
             Instance.is_valid t m
             && Mapping.size m = Mapping.size opt.Exact.mapping)
           mappings)

let prop_contains_solver_answer =
  qtest ~count:80 "enumerate: contains the solver's mapping"
    (instance_gen ~max_n1:3 ~max_n2:4 ()) print_instance (fun t ->
      let opt = Exact.solve ~objective:Exact.Cardinality t in
      let mappings, exhaustive =
        Exact.enumerate_optimal ~objective:Exact.Cardinality t
      in
      (not exhaustive) || List.mem opt.Exact.mapping mappings)

let prop_injective_variant =
  qtest ~count:60 "enumerate: 1-1 variant yields injective mappings"
    (instance_gen ~max_n1:3 ~max_n2:4 ()) print_instance (fun t ->
      let mappings, _ =
        Exact.enumerate_optimal ~injective:true ~objective:Exact.Cardinality t
      in
      List.for_all (Instance.is_valid ~injective:true t) mappings)

let suite =
  [
    ( "enumerate",
      [
        Alcotest.test_case "two witnesses" `Quick test_two_witnesses;
        Alcotest.test_case "limit truncates" `Quick test_limit_truncates;
        Alcotest.test_case "unique optimum" `Quick test_unique_optimum;
        Alcotest.test_case "similarity objective" `Quick test_similarity_objective;
        prop_all_optimal_and_valid;
        prop_contains_solver_answer;
        prop_injective_variant;
      ] );
  ]
