open Helpers
module Symmetric = Phom.Symmetric

let test_close_instance () =
  (* a→b→c: G1⁺ gains the skip edge a→c *)
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let t = eq_instance g1 g2 in
  let closed = Symmetric.close_instance t in
  Alcotest.(check bool) "skip edge" true (D.has_edge closed.Instance.g1 0 2);
  Alcotest.(check int) "g2 untouched" 2 (D.nb_edges closed.Instance.g2)

let test_symmetric_decide () =
  (* pattern chain a→b→c vs data with the same reachability: symmetric
     matching asks for paths to paths and still succeeds *)
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let g2 = graph [ "a"; "x"; "b"; "c" ] [ (0, 1); (1, 2); (2, 3) ] in
  let t = eq_instance g1 g2 in
  Alcotest.(check (option bool)) "paths to paths" (Some true)
    (Symmetric.decide t)

let test_symmetric_stricter_than_plain () =
  (* a→b plus separate b→c: plain p-hom of the chain holds on data where
     a reaches b and b reaches c, but the closed pattern also needs a→c *)
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  (* data: a→b, and a *different* path b→c, but a cannot reach c?
     impossible by transitivity — instead break it with labels: c only
     reachable from a different b-node *)
  let g2 = graph [ "a"; "b"; "b"; "c" ] [ (0, 1); (2, 3) ] in
  let t = eq_instance g1 g2 in
  Alcotest.(check (option bool)) "plain fails too here" (Some false)
    (Phom.Api.decide_phom t);
  Alcotest.(check (option bool)) "symmetric fails" (Some false)
    (Symmetric.decide t)

let test_symmetric_max_sim () =
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let t = eq_instance g1 g2 in
  let m = Symmetric.max_sim ~weights:[| 1.; 2.; 1. |] t in
  let closed = Symmetric.close_instance t in
  Alcotest.(check bool) "valid on G1⁺" true (Instance.is_valid closed m);
  Alcotest.(check (float 1e-9)) "full weighted similarity" 1.0
    (Instance.qual_sim ~weights:[| 1.; 2.; 1. |] closed m)

let prop_symmetric_implies_harder =
  qtest ~count:80 "symmetric: G1⁺ ⪯ G2 implies G1 ⪯ G2" (instance_gen ())
    print_instance (fun t ->
      match (Symmetric.decide t, Phom.Api.decide_phom t) with
      | Some true, Some plain -> plain
      | _ -> true)

let prop_symmetric_max_card_valid =
  qtest ~count:80 "symmetric: greedy mapping valid on the closed instance"
    (instance_gen ()) print_instance (fun t ->
      let closed = Symmetric.close_instance t in
      Instance.is_valid closed (Symmetric.max_card t))

let suite =
  [
    ( "symmetric",
      [
        Alcotest.test_case "close_instance" `Quick test_close_instance;
        Alcotest.test_case "decide over paths" `Quick test_symmetric_decide;
        Alcotest.test_case "stricter than plain" `Quick
          test_symmetric_stricter_than_plain;
        Alcotest.test_case "symmetric max_sim" `Quick test_symmetric_max_sim;
        prop_symmetric_implies_harder;
        prop_symmetric_max_card_valid;
      ] );
  ]
