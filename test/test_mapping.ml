open Helpers

let t_simple () =
  (* g1: a→b, g2: a→x→b *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  eq_instance g1 g2

let test_normalize () =
  Alcotest.(check (list (pair int int))) "sorts" [ (0, 1); (2, 0) ]
    (Mapping.normalize [ (2, 0); (0, 1) ]);
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Mapping.normalize: duplicate key") (fun () ->
      ignore (Mapping.normalize [ (0, 1); (0, 2) ]))

let test_function_injective () =
  Alcotest.(check bool) "function" true (Mapping.is_function [ (0, 1); (1, 1) ]);
  Alcotest.(check bool) "not function" false (Mapping.is_function [ (0, 1); (0, 2) ]);
  Alcotest.(check bool) "injective" true (Mapping.is_injective [ (0, 1); (1, 2) ]);
  Alcotest.(check bool) "not injective" false
    (Mapping.is_injective [ (0, 1); (1, 1) ])

let test_is_phom_edge_to_path () =
  let t = t_simple () in
  check_valid t [ (0, 0); (1, 2) ];
  (* mapping an edge backwards fails *)
  Alcotest.(check bool) "backwards invalid" false
    (Instance.is_valid t [ (0, 2); (1, 0) ])

let test_is_phom_threshold () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "a" ] [] in
  let mat = Simmat.of_fun ~n1:1 ~n2:1 (fun _ _ -> 0.4) in
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  Alcotest.(check bool) "below threshold" false (Instance.is_valid t [ (0, 0) ])

let test_is_phom_self_loop () =
  let g1 = graph [ "a" ] [ (0, 0) ] in
  let g2_loop = graph [ "a" ] [ (0, 0) ] in
  let g2_flat = graph [ "a" ] [] in
  Alcotest.(check bool) "loop to loop" true
    (Instance.is_valid (eq_instance g1 g2_loop) [ (0, 0) ]);
  Alcotest.(check bool) "loop to flat" false
    (Instance.is_valid (eq_instance g1 g2_flat) [ (0, 0) ])

let test_partial_mapping_ignores_outside_edges () =
  (* edge 0→1 doesn't constrain a mapping whose domain excludes 1 *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b" ] [] in
  check_valid (eq_instance g1 g2) [ (0, 0) ]

let test_qual_card () =
  Alcotest.(check (float 1e-9)) "half" 0.5 (Mapping.qual_card ~n1:4 [ (0, 0); (1, 1) ]);
  Alcotest.(check (float 1e-9)) "empty graph" 1.0 (Mapping.qual_card ~n1:0 [])

let test_qual_sim () =
  let mat = Simmat.of_fun ~n1:2 ~n2:1 (fun v _ -> if v = 0 then 1.0 else 0.5) in
  let weights = [| 2.; 3. |] in
  Alcotest.(check (float 1e-9)) "weighted"
    ((2. +. 1.5) /. 5.)
    (Mapping.qual_sim ~weights ~mat [ (0, 0); (1, 0) ]);
  Alcotest.(check (float 1e-9)) "zero weights" 1.0
    (Mapping.qual_sim ~weights:[| 0.; 0. |] ~mat [])

let test_empty_mapping_always_valid () =
  let t = t_simple () in
  check_valid t [];
  check_valid ~injective:true t []

let prop_restriction_stays_valid =
  qtest ~count:80 "mapping: restriction of a valid mapping is valid"
    (instance_gen ()) print_instance (fun t ->
      let e = Phom.Exact.solve ~objective:Phom.Exact.Cardinality t in
      let m = e.Phom.Exact.mapping in
      (* drop every other pair *)
      let restricted = List.filteri (fun i _ -> i mod 2 = 0) m in
      Instance.is_valid t m && Instance.is_valid t restricted)

let suite =
  [
    ( "mapping",
      [
        Alcotest.test_case "normalize" `Quick test_normalize;
        Alcotest.test_case "function / injective" `Quick test_function_injective;
        Alcotest.test_case "edge-to-path validity" `Quick test_is_phom_edge_to_path;
        Alcotest.test_case "threshold" `Quick test_is_phom_threshold;
        Alcotest.test_case "self loops" `Quick test_is_phom_self_loop;
        Alcotest.test_case "partial domains" `Quick
          test_partial_mapping_ignores_outside_edges;
        Alcotest.test_case "qualCard" `Quick test_qual_card;
        Alcotest.test_case "qualSim" `Quick test_qual_sim;
        Alcotest.test_case "empty mapping" `Quick test_empty_mapping_always_valid;
        prop_restriction_stays_valid;
      ] );
  ]
