open Helpers
module Cond = Phom_graph.Condensation

(* the Fig. 10(b) example: G2 with an SCC {A, B, C?}; we use a 4-node graph
   with a 2-cycle feeding a chain *)
let test_compress_cycle () =
  let g = graph [ "A"; "B"; "C"; "D" ] [ (0, 1); (1, 0); (1, 2); (2, 3) ] in
  let c = Cond.compress g in
  Alcotest.(check int) "3 components" 3 (D.n c.Cond.graph);
  let cab = c.Cond.comp_of_node.(0) in
  Alcotest.(check bool) "A,B merged" true (cab = c.Cond.comp_of_node.(1));
  Alcotest.(check bool) "cyclic has self loop" true
    (D.has_edge c.Cond.graph cab cab);
  Alcotest.(check bool) "trivial has none" false
    (let cd = c.Cond.comp_of_node.(3) in
     D.has_edge c.Cond.graph cd cd);
  Alcotest.(check (list string)) "bag" [ "A"; "B" ] (Cond.bag c g cab);
  Alcotest.(check int) "capacity" 2 (Cond.capacity c cab)

let test_edges_transitive () =
  let g = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let c = Cond.compress g in
  (* in G2* the edge relation is reachability, hence transitively closed *)
  let ca = c.Cond.comp_of_node.(0) and cc = c.Cond.comp_of_node.(2) in
  Alcotest.(check bool) "skip edge present" true (D.has_edge c.Cond.graph ca cc)

let prop_compression_matches_tc =
  qtest ~count:60 "condensation: G2* edges = component reachability"
    (digraph_gen ~max_n:10 ()) print_digraph (fun g ->
      let c = Cond.compress g in
      let t = TC.compute g in
      let ok = ref true in
      for u = 0 to D.n g - 1 do
        for v = 0 to D.n g - 1 do
          let cu = c.Cond.comp_of_node.(u) and cv = c.Cond.comp_of_node.(v) in
          (* u reaches v by a non-empty path iff G2* has the edge cu→cv *)
          if BM.get t u v <> D.has_edge c.Cond.graph cu cv then ok := false
        done
      done;
      !ok)

let prop_members_partition =
  qtest ~count:60 "condensation: members partition the nodes"
    (digraph_gen ~max_n:10 ()) print_digraph (fun g ->
      let c = Cond.compress g in
      let all = List.concat (Array.to_list c.Cond.members) in
      List.sort compare all = List.init (D.n g) Fun.id)

let suite =
  [
    ( "condensation",
      [
        Alcotest.test_case "compressing a cycle" `Quick test_compress_cycle;
        Alcotest.test_case "compressed edges transitively closed" `Quick
          test_edges_transitive;
        prop_compression_matches_tc;
        prop_members_partition;
      ] );
  ]
