open Helpers
module G = Phom_graph.Generators

let rng seed = Random.State.make [| seed |]

let test_erdos_renyi () =
  let g = G.erdos_renyi ~rng:(rng 1) ~n:20 ~m:40 ~labels:(fun i -> "n" ^ string_of_int i) in
  Alcotest.(check int) "n" 20 (D.n g);
  Alcotest.(check int) "m" 40 (D.nb_edges g);
  Alcotest.(check bool) "no self loops" true
    (D.fold_edges (fun u v acc -> acc && u <> v) g true)

let test_erdos_renyi_too_many () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Generators: too many edges requested") (fun () ->
      ignore (G.erdos_renyi ~rng:(rng 1) ~n:3 ~m:7 ~labels:(fun _ -> "x")))

let test_random_dag () =
  let g = G.random_dag ~rng:(rng 2) ~n:30 ~m:60 ~labels:(fun _ -> "x") in
  Alcotest.(check bool) "acyclic" true (Phom_graph.Traversal.is_dag g);
  Alcotest.(check int) "m" 60 (D.nb_edges g)

let test_random_tree () =
  let g = G.random_tree ~rng:(rng 3) ~n:25 ~labels:(fun _ -> "x") in
  Alcotest.(check int) "edges" 24 (D.nb_edges g);
  Alcotest.(check bool) "acyclic" true (Phom_graph.Traversal.is_dag g);
  let reachable = Phom_graph.Traversal.reachable g 0 in
  Alcotest.(check int) "rooted at 0" 25 (Bitset.count reachable)

let test_preferential_attachment () =
  let g = G.preferential_attachment ~rng:(rng 4) ~n:100 ~out:3 ~labels:(fun _ -> "x") in
  Alcotest.(check int) "n" 100 (D.n g);
  Alcotest.(check bool) "has hubs" true (D.max_degree g > 8)

let test_pool () =
  let pool = G.pool_for 500 in
  Alcotest.(check int) "labels" 2500 pool.G.nlabels;
  Alcotest.(check int) "groups" 50 pool.G.ngroups;
  Alcotest.(check int) "group of L51" 1 (G.group_of_label pool "L51");
  Alcotest.check_raises "bad label"
    (Invalid_argument "Generators.group_of_label: not a pool label") (fun () ->
      ignore (G.group_of_label pool "zzz"))

let test_paper_pattern () =
  let g, pool = G.paper_pattern ~rng:(rng 5) ~m:100 in
  Alcotest.(check int) "nodes" 100 (D.n g);
  Alcotest.(check int) "edges 4m" 400 (D.nb_edges g);
  Alcotest.(check bool) "labels from pool" true
    (Array.for_all
       (fun l -> G.group_of_label pool l >= 0)
       (D.labels g))

let test_paper_data_contains_subdivision () =
  (* nodes 0..m-1 of G2 are copies of G1, and every G1 edge has a
     corresponding non-empty path: the identity is a p-hom witness *)
  let g1, pool = G.paper_pattern ~rng:(rng 6) ~m:40 in
  let g2 = G.paper_data ~rng:(rng 7) ~pool ~noise:0.3 g1 in
  Alcotest.(check bool) "bigger" true (D.n g2 >= D.n g1);
  for v = 0 to D.n g1 - 1 do
    Alcotest.(check string)
      (Printf.sprintf "label of copy %d" v)
      (D.label g1 v) (D.label g2 v)
  done;
  let t = TC.compute g2 in
  Alcotest.(check bool) "identity is a p-hom witness" true
    (D.fold_edges (fun u v acc -> acc && BM.get t u v) g1 true)

let test_paper_data_zero_noise () =
  let g1, pool = G.paper_pattern ~rng:(rng 8) ~m:30 in
  let g2 = G.paper_data ~rng:(rng 9) ~pool ~noise:0.0 g1 in
  Alcotest.(check bool) "no noise = same graph" true (D.equal g1 g2)

let test_subdivide () =
  let g = graph [ "a"; "b" ] [ (0, 1) ] in
  let g' =
    G.subdivide_edges ~rng:(rng 10) ~prob:1.0 ~max_len:3
      ~fresh_label:(fun _ -> "fresh")
      g
  in
  Alcotest.(check bool) "original edge replaced" false (D.has_edge g' 0 1);
  Alcotest.(check bool) "path exists" true (BM.get (TC.compute g') 0 1);
  Alcotest.(check bool) "fresh nodes appended" true (D.n g' > 2)

let test_determinism () =
  let a, _ = G.paper_pattern ~rng:(rng 42) ~m:50 in
  let b, _ = G.paper_pattern ~rng:(rng 42) ~m:50 in
  Alcotest.(check bool) "same seed same graph" true (D.equal a b)

let suite =
  [
    ( "generators",
      [
        Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
        Alcotest.test_case "erdos-renyi capacity check" `Quick
          test_erdos_renyi_too_many;
        Alcotest.test_case "random dag" `Quick test_random_dag;
        Alcotest.test_case "random tree" `Quick test_random_tree;
        Alcotest.test_case "preferential attachment" `Quick
          test_preferential_attachment;
        Alcotest.test_case "label pool" `Quick test_pool;
        Alcotest.test_case "paper pattern: m nodes, 4m edges" `Quick
          test_paper_pattern;
        Alcotest.test_case "paper data embeds a subdivision" `Quick
          test_paper_data_contains_subdivision;
        Alcotest.test_case "zero noise is identity" `Quick test_paper_data_zero_noise;
        Alcotest.test_case "edge subdivision" `Quick test_subdivide;
        Alcotest.test_case "determinism" `Quick test_determinism;
      ] );
  ]
