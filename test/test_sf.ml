open Helpers
module SF = Phom_sim.Similarity_flooding

let two_chains () =
  (* isomorphic 3-chains with ambiguous labels: flooding should use the
     structure to align them *)
  let g1 = graph [ "x"; "x"; "x" ] [ (0, 1); (1, 2) ] in
  let g2 = graph [ "x"; "x"; "x" ] [ (0, 1); (1, 2) ] in
  (g1, g2)

let test_flood_runs () =
  let g1, g2 = two_chains () in
  let init = Simmat.of_label_equality g1 g2 in
  let flooded = SF.flood ~init g1 g2 in
  Alcotest.(check int) "dims" 3 (Simmat.n1 flooded);
  Alcotest.(check (float 1e-9)) "normalized max" 1.0 (Simmat.max_value flooded)

let test_structure_disambiguates () =
  (* middle node of a chain should align with middle node *)
  let g1, g2 = two_chains () in
  let init = Simmat.of_label_equality g1 g2 in
  let flooded = SF.flood ~init g1 g2 in
  Alcotest.(check bool) "middle beats ends" true
    (Simmat.get flooded 1 1 > Simmat.get flooded 1 0
    && Simmat.get flooded 1 1 > Simmat.get flooded 1 2)

let test_impls_agree () =
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ] in
  let g2 = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (1, 2); (1, 3) ] in
  let init = Simmat.of_label_equality g1 g2 in
  let a = SF.flood ~impl:SF.Factorized ~init g1 g2 in
  let b = SF.flood ~impl:SF.Edge_pairs ~init g1 g2 in
  for v = 0 to 2 do
    for u = 0 to 3 do
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "entry (%d,%d)" v u)
        (Simmat.get a v u) (Simmat.get b v u)
    done
  done

let test_greedy_assignment () =
  let m = Simmat.create ~n1:2 ~n2:2 in
  Simmat.set m 0 0 0.9;
  Simmat.set m 0 1 0.8;
  Simmat.set m 1 0 0.85;
  (* greedy takes (0,0) first, then (1,0) is blocked; 1 gets nothing *)
  Alcotest.(check (list (pair int int))) "assignment" [ (0, 0) ]
    (SF.greedy_assignment m);
  Simmat.set m 1 1 0.1;
  Alcotest.(check (list (pair int int))) "assignment with fallback"
    [ (0, 0); (1, 1) ]
    (SF.greedy_assignment m)

let test_match_quality () =
  let g1, g2 = two_chains () in
  let init = Simmat.of_label_equality g1 g2 in
  let flooded = SF.flood ~init g1 g2 in
  Alcotest.(check (float 1e-9)) "perfect copy" 1.0
    (SF.match_quality ~init ~flooded ~xi:0.75)

let test_empty_graphs () =
  let g = graph [] [] in
  let init = Simmat.create ~n1:0 ~n2:0 in
  let flooded = SF.flood ~init g g in
  Alcotest.(check (float 1e-9)) "vacuous quality" 1.0
    (SF.match_quality ~init ~flooded ~xi:0.5)

let prop_impls_agree =
  qtest ~count:40 "sf: factorized = edge-pairs"
    (QCheck.Gen.pair (digraph_gen ~max_n:5 ()) (digraph_gen ~max_n:5 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      let init = Simmat.of_label_equality g1 g2 in
      let a = SF.flood ~impl:SF.Factorized ~init g1 g2 in
      let b = SF.flood ~impl:SF.Edge_pairs ~init g1 g2 in
      let ok = ref true in
      for v = 0 to Simmat.n1 a - 1 do
        for u = 0 to Simmat.n2 a - 1 do
          if abs_float (Simmat.get a v u -. Simmat.get b v u) > 1e-6 then
            ok := false
        done
      done;
      !ok)

let suite =
  [
    ( "similarity_flooding",
      [
        Alcotest.test_case "flood runs and normalizes" `Quick test_flood_runs;
        Alcotest.test_case "structure disambiguates" `Quick
          test_structure_disambiguates;
        Alcotest.test_case "both implementations agree" `Quick test_impls_agree;
        Alcotest.test_case "greedy assignment" `Quick test_greedy_assignment;
        Alcotest.test_case "match quality on a copy" `Quick test_match_quality;
        Alcotest.test_case "empty graphs" `Quick test_empty_graphs;
        prop_impls_agree;
      ] );
  ]
