open Helpers
module CMS = Phom.Comp_max_sim
module Exact = Phom.Exact

let weighted_instance () =
  (* two G1 nodes compete for one target; node 1 is heavy *)
  let g1 = graph [ "a"; "a" ] [] and g2 = graph [ "a" ] [] in
  (eq_instance g1 g2, [| 1.; 10. |])

let test_prefers_heavy_node () =
  let t, weights = weighted_instance () in
  let m = CMS.run ~injective:true ~weights t in
  check_valid ~injective:true t m;
  Alcotest.(check (float 1e-9)) "heavy node wins" (10. /. 11.)
    (Instance.qual_sim ~weights t m)

let test_default_weights_are_uniform () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let t = eq_instance g1 g2 in
  let m = CMS.run t in
  Alcotest.(check (float 1e-9)) "full similarity" 1.0
    (Instance.qual_sim ~weights:[| 1.; 1. |] t m)

let test_weight_length_checked () =
  let t, _ = weighted_instance () in
  Alcotest.check_raises "length" (Invalid_argument "Comp_max_sim.run: weights length mismatch")
    (fun () -> ignore (CMS.run ~weights:[| 1. |] t))

let test_zero_weights () =
  let t, _ = weighted_instance () in
  let m = CMS.run ~weights:[| 0.; 0. |] t in
  check_valid t m

let prop_always_valid =
  qtest ~count:150 "compMaxSim: output valid (plain and 1-1)" (instance_gen ())
    print_instance (fun t ->
      let n1 = D.n t.g1 in
      let weights = Array.init n1 (fun i -> float_of_int (1 + (i mod 4))) in
      Instance.is_valid t (CMS.run ~weights t)
      && Instance.is_valid ~injective:true t (CMS.run ~injective:true ~weights t))

let prop_bounded_by_exact =
  qtest ~count:100 "compMaxSim: quality ≤ exact optimum" (instance_gen ())
    print_instance (fun t ->
      let n1 = D.n t.g1 in
      let weights = Array.init n1 (fun i -> float_of_int (1 + (i mod 4))) in
      let approx = Instance.qual_sim ~weights t (CMS.run ~weights t) in
      let e = Exact.solve ~objective:(Phom.Exact.Similarity weights) t in
      (e.Phom.Exact.status <> Phom_graph.Budget.Complete)
      || approx <= Instance.qual_sim ~weights t e.Phom.Exact.mapping +. 1e-9)

(* the top weight group holds pairs in (W/2, W]; greedy returns a non-empty
   mapping there, so the result is worth at least W/2 *)
let prop_at_least_best_single_pair =
  qtest ~count:100 "compMaxSim: ≥ half the single best pair" (instance_gen ())
    print_instance (fun t ->
      let n1 = D.n t.g1 and n2 = D.n t.g2 in
      let weights = Array.init n1 (fun i -> float_of_int (1 + (i mod 4))) in
      let best_pair = ref 0. in
      for v = 0 to n1 - 1 do
        for u = 0 to n2 - 1 do
          let s = Simmat.get t.mat v u in
          if s >= t.xi then begin
            (* a single pair is only a valid mapping if self-loops allow *)
            if Instance.is_valid t [ (v, u) ] then
              best_pair := Float.max !best_pair (weights.(v) *. s)
          end
        done
      done;
      let total = Array.fold_left ( +. ) 0. weights in
      let got = Instance.qual_sim ~weights t (CMS.run ~weights t) in
      got >= (!best_pair /. 2. /. total) -. 1e-9)

let suite =
  [
    ( "comp_max_sim",
      [
        Alcotest.test_case "prefers heavy nodes" `Quick test_prefers_heavy_node;
        Alcotest.test_case "uniform weights" `Quick test_default_weights_are_uniform;
        Alcotest.test_case "weights length checked" `Quick test_weight_length_checked;
        Alcotest.test_case "all-zero weights" `Quick test_zero_weights;
        prop_always_valid;
        prop_bounded_by_exact;
        prop_at_least_best_single_pair;
      ] );
  ]
