open Helpers
module BM = Phom_graph.Bitmatrix

let test_get_set () =
  let m = BM.create ~rows:5 ~cols:70 in
  Alcotest.(check int) "initially empty" 0 (BM.count m);
  BM.set m 0 0 true;
  BM.set m 4 69 true;
  BM.set m 2 63 true;
  Alcotest.(check bool) "get 0 0" true (BM.get m 0 0);
  Alcotest.(check bool) "get 4 69" true (BM.get m 4 69);
  Alcotest.(check bool) "get 2 64" false (BM.get m 2 64);
  BM.set m 2 63 false;
  Alcotest.(check bool) "cleared" false (BM.get m 2 63);
  Alcotest.(check int) "count" 2 (BM.count m)

let test_bounds () =
  let m = BM.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "row" (Invalid_argument "Bitmatrix: index out of bounds")
    (fun () -> ignore (BM.get m 2 0))

let test_or_rows () =
  let m = BM.create ~rows:3 ~cols:100 in
  BM.set m 0 1 true;
  BM.set m 0 64 true;
  BM.set m 1 2 true;
  BM.or_row_into m ~dst:1 ~src:0;
  Alcotest.(check int) "row 1 count" 3 (BM.row_count m 1);
  Alcotest.(check bool) "got 64" true (BM.get m 1 64);
  let other = BM.create ~rows:2 ~cols:100 in
  BM.or_row ~from:m ~src:1 ~into:other ~dst:0;
  Alcotest.(check int) "cross-matrix" 3 (BM.row_count other 0)

let test_word_boundary_isolation () =
  (* rows are word-aligned: setting the last column of row r must not leak
     into row r+1 *)
  let m = BM.create ~rows:2 ~cols:63 in
  BM.set m 0 62 true;
  Alcotest.(check bool) "no leak" false (BM.get m 1 0);
  Alcotest.(check int) "row 1 empty" 0 (BM.row_count m 1)

let test_transpose () =
  let m = BM.create ~rows:3 ~cols:4 in
  BM.set m 0 3 true;
  BM.set m 2 1 true;
  let t = BM.transpose m in
  Alcotest.(check int) "dims" 4 (BM.rows t);
  Alcotest.(check bool) "3,0" true (BM.get t 3 0);
  Alcotest.(check bool) "1,2" true (BM.get t 1 2);
  Alcotest.(check bool) "double transpose" true (BM.equal m (BM.transpose t))

let test_iter_row () =
  let m = BM.create ~rows:1 ~cols:130 in
  List.iter (fun c -> BM.set m 0 c true) [ 0; 62; 63; 129 ];
  let seen = ref [] in
  BM.iter_row (fun c -> seen := c :: !seen) m 0;
  Alcotest.(check (list int)) "iter_row" [ 0; 62; 63; 129 ] (List.rev !seen)

let gen_cells : (int * int) list QCheck.Gen.t =
 fun st ->
  List.init (Random.State.int st 30) (fun _ ->
      (Random.State.int st 7, Random.State.int st 90))

let prop_set_get =
  qtest "bitmatrix: set then get" gen_cells
    (fun l -> String.concat ";" (List.map (fun (r, c) -> Printf.sprintf "%d,%d" r c) l))
    (fun cells ->
      let m = BM.create ~rows:7 ~cols:90 in
      List.iter (fun (r, c) -> BM.set m r c true) cells;
      List.for_all (fun (r, c) -> BM.get m r c) cells
      && BM.count m = List.length (List.sort_uniq compare cells))

let suite =
  [
    ( "bitmatrix",
      [
        Alcotest.test_case "get/set/count" `Quick test_get_set;
        Alcotest.test_case "bounds" `Quick test_bounds;
        Alcotest.test_case "row OR (same and cross matrix)" `Quick test_or_rows;
        Alcotest.test_case "word-aligned rows don't leak" `Quick
          test_word_boundary_isolation;
        Alcotest.test_case "transpose" `Quick test_transpose;
        Alcotest.test_case "iter_row across words" `Quick test_iter_row;
        prop_set_get;
      ] );
  ]
