.PHONY: all build check test bench bench-full ablations micro examples clean

all: build

build:
	dune build @all

# full gate: build everything, then the unit + property + cram suites
check:
	dune build @all
	dune runtest

test:
	dune runtest

test-capture:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-full:
	dune exec bench/main.exe -- --full

ablations:
	dune exec bench/main.exe -- ablations

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/plagiarism_detection.exe
	dune exec examples/schema_embedding.exe
	dune exec examples/anomaly_detection.exe
	dune exec examples/web_mirror_detection.exe

clean:
	dune clean
