.PHONY: all build check test bench bench-full bench-parallel bench-serve \
	bench-obs bench-recovery bench-exact bench-exact-baseline bench-dp \
	bench-dp-baseline bench-incr bench-incr-baseline bench-fleet serve-smoke \
	serve-smoke-faults chaos-smoke fleet-smoke ablations micro examples fmt \
	fmt-check ci clean

# worker domains for the parallel runtime; passed through to the bench
# harness (the CLI takes its own --jobs flag)
JOBS ?= 1

all: build

build:
	dune build @all

# full gate: build everything, then the unit + property + cram suites
check:
	dune build @all
	dune runtest

test:
	dune runtest

test-capture:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe -- --jobs $(JOBS) 2>&1 | tee bench_output.txt

bench-full:
	dune exec bench/main.exe -- --full --jobs $(JOBS)

bench-parallel:
	dune exec bench/main.exe -- parallel --jobs $(JOBS) --out BENCH_parallel.json

bench-serve:
	dune exec bench/main.exe -- serve --out BENCH_serve.json

# metrics-on vs metrics-off on the warm-serve path; fails above 2% overhead
bench-obs:
	dune exec bench/main.exe -- obs --out BENCH_obs.json

# cold start vs recovered start to the first answer; fails unless the
# recovered start (snapshot + journal replay) is strictly cheaper
bench-recovery:
	dune exec bench/main.exe -- recovery --out BENCH_recovery.json

# legacy colouring B&B vs the bitset MWC engine on the tracked seeded
# instances; fails below the 10x step-speedup floor or on >20% regression
# against the checked-in baseline — the same gate the bench-exact CI job runs
bench-exact:
	dune exec bench/main.exe -- exact --out BENCH_exact.json \
		--check-against bench/baselines/BENCH_exact.json

# refresh the checked-in baseline after an intentional perf change (run on a
# quiet machine; steps are deterministic, times carry the slack)
bench-exact-baseline:
	dune exec bench/main.exe -- exact --out bench/baselines/BENCH_exact.json

# tree-decomposition DP vs the MWC engine on the tracked low-treewidth
# instances; fails below the 2x step-speedup floor or on >20% regression
# against the checked-in baseline — the same gate the bench-dp CI job runs
bench-dp:
	dune exec bench/main.exe -- dp --out BENCH_dp.json \
		--check-against bench/baselines/BENCH_dp.json

bench-dp-baseline:
	dune exec bench/main.exe -- dp --out bench/baselines/BENCH_dp.json

# addedge/deledge + warm re-solve vs unload + reload + cold solve on the
# tracked seeded instances; fails unless the incremental path wins on every
# instance, both paths agree on every answer, and no instance regresses
# against the checked-in baseline — the same gate the bench-incr CI job runs
bench-incr:
	dune exec bench/main.exe -- incr --out BENCH_incr.json \
		--check-against bench/baselines/BENCH_incr.json

bench-incr-baseline:
	dune exec bench/main.exe -- incr --out bench/baselines/BENCH_incr.json

# start phomd on a temp socket, run cold/warm/budget-tripped client queries,
# assert clean shutdown — the same flow as the CI daemon-smoke job
serve-smoke:
	sh scripts/serve_smoke.sh

# the smoke plus a fault-injection soak: misbehaving peers alongside
# healthy retrying clients, under an injected per-solve delay
serve-smoke-faults:
	sh scripts/serve_smoke.sh --faults

# kill -9 a durable phomd mid-solve, restart on the same state dir, require
# a byte-identical warm reply; then corrupt the snapshot and require
# quarantine — the same flow as the CI chaos-smoke job
chaos-smoke:
	sh scripts/chaos_smoke.sh

# three TCP replicas behind the router: kill -9 the owner mid-solve,
# require the byte-identical failover answer, restart it and require a
# clean rejoin — the same flow as the CI fleet-smoke job
fleet-smoke:
	sh scripts/fleet_smoke.sh

# routed p50/p99 against 1 vs 3 replicas plus the kill -9 failover blip;
# fails when any routed request errors or the blip exceeds its bound
bench-fleet:
	dune exec bench/main.exe -- fleet --out BENCH_fleet.json

ablations:
	dune exec bench/main.exe -- ablations

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/plagiarism_detection.exe
	dune exec examples/schema_embedding.exe
	dune exec examples/anomaly_detection.exe
	dune exec examples/web_mirror_detection.exe

# formatting is opt-in until the seed tree has its bulk reformat: both
# targets no-op with a note when ocamlformat is not installed
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "ocamlformat not installed; skipping (opam install ocamlformat.0.26.2)"; \
	fi

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping (opam install ocamlformat.0.26.2)"; \
	fi

# exactly what .github/workflows/ci.yml runs (build-test + bench-smoke),
# so a green `make ci` predicts a green pipeline
ci:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- micro
	dune exec bench/main.exe -- parallel --jobs 4 --out BENCH_parallel.json
	sh scripts/serve_smoke.sh
	sh scripts/serve_smoke.sh --faults
	dune exec bench/main.exe -- serve --out BENCH_serve.json
	dune exec bench/main.exe -- obs --out BENCH_obs.json
	sh scripts/chaos_smoke.sh
	dune exec bench/main.exe -- recovery --out BENCH_recovery.json
	sh scripts/fleet_smoke.sh
	dune exec bench/main.exe -- fleet --out BENCH_fleet.json
	dune exec bench/main.exe -- exact --out BENCH_exact.json \
		--check-against bench/baselines/BENCH_exact.json
	dune exec bench/main.exe -- dp --out BENCH_dp.json \
		--check-against bench/baselines/BENCH_dp.json
	dune exec bench/main.exe -- incr --out BENCH_incr.json \
		--check-against bench/baselines/BENCH_incr.json

clean:
	dune clean
